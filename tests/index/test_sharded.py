"""Unit tests for the sharded serving layer (repro.index.sharded)."""

import numpy as np
import pytest

from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex, shard_of_key


def _build(num_shards=4, side=16, points=200, seed=9, **kwargs):
    curve = make_curve("onion", side, 2)
    index = ShardedSFCIndex(curve, num_shards=num_shards, page_capacity=8, **kwargs)
    rng = np.random.default_rng(seed)
    index.bulk_load(map(tuple, rng.integers(0, side, size=(points, 2))))
    return index


class TestConstruction:
    def test_default_map_is_equal_key_ranges(self):
        index = _build(num_shards=4)
        assert index.num_shards == 4
        assert index.shards[0][0] == 0
        assert index.shards[-1][1] == index.curve.size - 1

    def test_explicit_shard_map(self):
        curve = make_curve("onion", 8, 2)
        index = ShardedSFCIndex(curve, shards=[(0, 9), (10, 63)])
        assert index.shards == ((0, 9), (10, 63))

    def test_rejects_non_covering_map(self):
        curve = make_curve("onion", 8, 2)
        with pytest.raises(InvalidQueryError):
            ShardedSFCIndex(curve, shards=[(0, 30)])

    def test_rejects_bad_page_capacity(self):
        with pytest.raises(InvalidQueryError):
            ShardedSFCIndex(make_curve("onion", 8, 2), page_capacity=0)


class TestRouting:
    def test_inserts_land_in_their_shard(self):
        index = _build(points=0)
        index.insert((0, 0), payload="origin")
        shard_id = index.shard_of((0, 0))
        assert shard_id == shard_of_key(index.shards, index.curve.index((0, 0)))
        assert index.shard_loads[shard_id] == 1
        assert len(index) == 1

    def test_shard_loads_sum_to_len(self):
        index = _build(points=150)
        assert sum(index.shard_loads) == len(index) == 150

    def test_point_query_and_delete_route(self):
        index = _build(points=0)
        index.insert((3, 4), payload="a")
        index.insert((3, 4), payload="b")
        assert [r.payload for r in index.point_query((3, 4))] == ["a", "b"]
        assert index.delete((3, 4), payload="a")
        assert [r.payload for r in index.point_query((3, 4))] == ["b"]
        assert not index.delete((9, 9))
        assert len(index) == 1

    def test_bulk_load_with_payloads(self):
        index = _build(points=0)
        index.bulk_load([(1, 1), (2, 2)], payloads=["p", "q"])
        assert index.point_query((2, 2))[0].payload == "q"
        with pytest.raises(InvalidQueryError):
            index.bulk_load([(3, 3), (4, 4)], payloads=["only-one"])


class TestLayout:
    def test_flush_packs_pages_across_shard_boundaries(self):
        """The shared layout is identical to the unsharded index's."""
        index = _build(num_shards=5)
        index.flush()
        single = SFCIndex(index.curve, page_capacity=8)
        rng = np.random.default_rng(9)
        single.bulk_load(map(tuple, rng.integers(0, 16, size=(200, 2))))
        single.flush()
        assert index.page_layout.first_keys == single.page_layout.first_keys
        assert index.page_layout.last_keys == single.page_layout.last_keys
        assert index.page_layout.num_pages == single.page_layout.num_pages

    def test_flush_bumps_epoch_and_invalidates_plans(self):
        index = _build()
        index.flush()
        epoch = index.epoch
        rect = Rect((0, 0), (7, 7))
        first = index.plan(rect)
        assert index.plan(rect) is first  # cached
        index.insert((0, 0))
        result = index.range_query(rect)  # reflushes: new epoch, fresh plan
        assert index.epoch == epoch + 1
        assert index.plan(rect) is not first
        assert any(r.point == (0, 0) for r in result.records)

    def test_query_flushes_lazily(self):
        index = _build(points=50)
        assert index.page_layout is None
        result = index.range_query(Rect((0, 0), (15, 15)))
        assert index.page_layout is not None
        assert len(result.records) == 50


class TestRebalance:
    def test_balances_skewed_load(self):
        curve = make_curve("onion", 16, 2)
        index = ShardedSFCIndex(curve, num_shards=4, page_capacity=8)
        rng = np.random.default_rng(2)
        # Hotspot: most records in one corner -> one shard overloaded.
        hot = rng.integers(0, 4, size=(300, 2))
        cold = rng.integers(0, 16, size=(60, 2))
        index.bulk_load(map(tuple, np.concatenate([hot, cold])))
        skew_before = max(index.shard_loads) - min(index.shard_loads)
        index.rebalance()
        loads = index.shard_loads
        assert sum(loads) == 360
        assert max(loads) - min(loads) < skew_before
        assert max(loads) <= 2 * min(loads) + 1

    def test_rebalance_can_change_shard_count(self):
        index = _build(num_shards=2)
        shards = index.rebalance(num_shards=6)
        assert index.shards == shards
        assert 1 <= index.num_shards <= 6

    def test_empty_index_rebalances_to_equal_ranges(self):
        index = _build(points=0)
        shards = index.rebalance(num_shards=3)
        assert len(shards) == 3
        assert shards[0][0] == 0 and shards[-1][1] == index.curve.size - 1


class TestResultSurface:
    def test_result_reports_fanout_and_parallel_cost(self):
        index = _build(num_shards=8)
        result = index.range_query(Rect((0, 0), (15, 15)))
        assert 1 <= result.fan_out <= 8
        # One worker serializes the per-shard replays (each from its own
        # parked head, so their sum is >= the canonical serial cost).
        one_worker = result.fanout_cost * result.fan_out + sum(
            s.cost() for s in result.per_shard
        )
        assert result.parallel_cost(workers=1) == pytest.approx(one_worker)
        assert result.parallel_cost() <= result.parallel_cost(workers=1)
        assert sum(s.cost() for s in result.per_shard) >= result.cost()

    def test_explain_is_shard_aware(self):
        index = _build(num_shards=4)
        text = index.explain(Rect((0, 0), (15, 15)))
        assert "ShardedPlan" in text
        assert "touched of 4" in text
        assert "identical to unsharded" in text

    def test_batch_reports_per_shard_totals(self):
        index = _build(num_shards=4)
        rects = [Rect((0, 0), (7, 7)), Rect((8, 8), (15, 15))]
        batch = index.range_query_batch(rects)
        assert batch.total_records == sum(len(r.records) for r in batch.results)
        assert batch.total_fan_out == sum(r.fan_out for r in batch.results)
        assert sum(s.records for s in batch.per_shard) == batch.total_records


class TestBufferPool:
    """buffer_pages wires an LRU pool into the scatter-gather gather side."""

    def test_warm_queries_never_touch_the_disk(self):
        index = _build(num_shards=4, buffer_pages=512)
        assert index.buffer_pool is not None
        rect = Rect((2, 2), (11, 11))
        cold = index.range_query(rect)
        assert cold.pages_read > 0
        warm = index.range_query(rect)
        assert warm.records == cold.records
        assert warm.pages_read == 0
        assert index.buffer_pool.stats.hits >= cold.pages_read

    def test_pool_invalidated_on_reflush_and_migration(self):
        index = _build(num_shards=2, buffer_pages=512)
        rect = Rect((1, 1), (9, 9))
        index.range_query(rect)
        assert index.buffer_pool.resident > 0
        index.insert((0, 0), payload="dirty")
        index.range_query(rect)  # auto-reflush must not serve stale pages
        index.migrate_to(make_curve("hilbert", 16, 2))
        cold = index.range_query(rect)
        assert cold.pages_read > 0  # post-cutover pass is cold again

    def test_disabled_by_default(self):
        assert _build().buffer_pool is None
