"""Index-level gap tolerance and buffer-pool integration."""

import numpy as np
import pytest

from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex


def _full_grid_index(name, side, **kwargs):
    index = SFCIndex(make_curve(name, side, 2), page_capacity=4, **kwargs)
    for x in range(side):
        for y in range(side):
            index.insert((x, y), payload=(x, y))
    index.flush()
    return index


class TestGapTolerance:
    def test_results_identical_at_any_tolerance(self):
        index = _full_grid_index("hilbert", 16)
        rect = Rect((2, 3), (12, 13))
        baseline = sorted(r.payload for r in index.range_query(rect).records)
        for tolerance in (1, 8, 64, 255):
            result = index.range_query(rect, gap_tolerance=tolerance)
            assert sorted(r.payload for r in result.records) == baseline

    def test_seeks_decrease_overread_increases(self):
        index = _full_grid_index("hilbert", 32)
        rect = Rect((1, 1), (27, 28))
        seeks = []
        over = []
        for tolerance in (0, 16, 256):
            result = index.range_query(rect, gap_tolerance=tolerance)
            seeks.append(result.seeks)
            over.append(result.over_read)
        assert seeks[0] >= seeks[1] >= seeks[2]
        assert seeks[0] > seeks[2]
        assert over[0] == 0
        assert over[2] > over[1] >= 0

    def test_zero_tolerance_has_no_overread(self):
        index = _full_grid_index("zorder", 16)
        result = index.range_query(Rect((3, 3), (12, 12)))
        assert result.over_read == 0


class TestBufferPool:
    def test_pool_exposed(self):
        index = _full_grid_index("onion", 8, buffer_pages=16)
        assert index.buffer_pool is not None
        assert _full_grid_index("onion", 8).buffer_pool is None

    def test_repeat_queries_hit_memory(self):
        index = _full_grid_index("onion", 16, buffer_pages=1024)
        rect = Rect((2, 2), (12, 12))
        first = index.range_query(rect)
        assert first.seeks > 0
        second = index.range_query(rect)
        assert second.seeks == 0
        assert second.sequential_reads == 0
        assert sorted(r.payload for r in second.records) == sorted(
            r.payload for r in first.records
        )
        assert index.buffer_pool.stats.hits > 0

    def test_small_pool_still_correct(self):
        index = _full_grid_index("hilbert", 16, buffer_pages=2)
        rect = Rect((0, 0), (15, 15))
        result = index.range_query(rect)
        assert len(result.records) == 256

    def test_flush_invalidates_pool(self):
        index = _full_grid_index("onion", 8, buffer_pages=64)
        rect = Rect((1, 1), (6, 6))
        index.range_query(rect)
        index.insert((0, 0), payload="new")
        result = index.range_query(rect)  # auto-reflush must invalidate
        expected = {(x, y) for x in range(1, 7) for y in range(1, 7)}
        assert {r.payload for r in result.records if r.payload != "new"} >= expected
