"""Index-level gap tolerance and buffer-pool integration."""

import numpy as np
import pytest

from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex


def _full_grid_index(name, side, **kwargs):
    index = SFCIndex(make_curve(name, side, 2), page_capacity=4, **kwargs)
    for x in range(side):
        for y in range(side):
            index.insert((x, y), payload=(x, y))
    index.flush()
    return index


class TestGapTolerance:
    def test_results_identical_at_any_tolerance(self):
        index = _full_grid_index("hilbert", 16)
        rect = Rect((2, 3), (12, 13))
        baseline = sorted(r.payload for r in index.range_query(rect).records)
        for tolerance in (1, 8, 64, 255):
            result = index.range_query(rect, gap_tolerance=tolerance)
            assert sorted(r.payload for r in result.records) == baseline

    def test_seeks_decrease_overread_increases(self):
        index = _full_grid_index("hilbert", 32)
        rect = Rect((1, 1), (27, 28))
        seeks = []
        over = []
        for tolerance in (0, 16, 256):
            result = index.range_query(rect, gap_tolerance=tolerance)
            seeks.append(result.seeks)
            over.append(result.over_read)
        assert seeks[0] >= seeks[1] >= seeks[2]
        assert seeks[0] > seeks[2]
        assert over[0] == 0
        assert over[2] > over[1] >= 0

    def test_zero_tolerance_has_no_overread(self):
        index = _full_grid_index("zorder", 16)
        result = index.range_query(Rect((3, 3), (12, 12)))
        assert result.over_read == 0


class TestOverReadAccounting:
    def test_over_read_equals_tolerated_gap_cells_on_full_grid(self):
        """On a fully populated grid every tolerated gap key holds exactly
        one record, so ``over_read`` must equal the plan's ``gap_cells``."""
        index = _full_grid_index("hilbert", 16)
        rect = Rect((2, 3), (12, 13))
        for tolerance in (1, 4, 32, 128):
            plan = index.plan(rect, gap_tolerance=tolerance)
            result = index.range_query(rect, gap_tolerance=tolerance)
            assert result.over_read == plan.gap_cells
            assert len(result.records) == rect.volume

    def test_over_read_counts_only_populated_gap_cells(self):
        """With holes in the data, over-read is bounded by the gap cells
        and counts exactly the stored records inside tolerated gaps."""
        index = SFCIndex(make_curve("hilbert", 16, 2), page_capacity=4)
        points = [(x, y) for x in range(16) for y in range(16) if (x + y) % 3]
        index.bulk_load(points, payloads=points)
        index.flush()
        rect = Rect((1, 1), (13, 14))
        for tolerance in (8, 64):
            plan = index.plan(rect, gap_tolerance=tolerance)
            result = index.range_query(rect, gap_tolerance=tolerance)
            assert 0 < result.over_read <= plan.gap_cells
            gap_keys = set()
            for (s, e) in plan.scan_runs:
                gap_keys.update(range(s, e + 1))
            for (s, e) in plan.runs:
                gap_keys.difference_update(range(s, e + 1))
            populated = sum(
                1 for key in gap_keys
                if index.point_query(index.curve.point(key))
            )
            assert result.over_read == populated

    def test_over_read_records_never_returned(self):
        index = _full_grid_index("zorder", 16)
        rect = Rect((4, 2), (11, 13))
        result = index.range_query(rect, gap_tolerance=200)
        assert result.over_read > 0
        assert all(rect.contains(r.point) for r in result.records)


class TestBufferPool:
    def test_pool_exposed(self):
        index = _full_grid_index("onion", 8, buffer_pages=16)
        assert index.buffer_pool is not None
        assert _full_grid_index("onion", 8).buffer_pool is None

    def test_repeat_queries_hit_memory(self):
        index = _full_grid_index("onion", 16, buffer_pages=1024)
        rect = Rect((2, 2), (12, 12))
        first = index.range_query(rect)
        assert first.seeks > 0
        second = index.range_query(rect)
        assert second.seeks == 0
        assert second.sequential_reads == 0
        assert sorted(r.payload for r in second.records) == sorted(
            r.payload for r in first.records
        )
        assert index.buffer_pool.stats.hits > 0

    def test_small_pool_still_correct(self):
        index = _full_grid_index("hilbert", 16, buffer_pages=2)
        rect = Rect((0, 0), (15, 15))
        result = index.range_query(rect)
        assert len(result.records) == 256

    def test_flush_invalidates_pool(self):
        index = _full_grid_index("onion", 8, buffer_pages=64)
        rect = Rect((1, 1), (6, 6))
        index.range_query(rect)
        index.insert((0, 0), payload="new")
        result = index.range_query(rect)  # auto-reflush must invalidate
        expected = {(x, y) for x in range(1, 7) for y in range(1, 7)}
        assert {r.payload for r in result.records if r.payload != "new"} >= expected

    def test_invalidate_drops_residency_but_keeps_stats(self):
        index = _full_grid_index("onion", 8, buffer_pages=64)
        rect = Rect((1, 1), (6, 6))
        index.range_query(rect)
        pool = index.buffer_pool
        assert pool.resident > 0
        misses_before = pool.stats.misses
        pool.invalidate()
        assert pool.resident == 0
        assert pool.stats.misses == misses_before  # counters survive

    def test_reflush_forces_cold_rereads(self):
        """After a re-flush the pool must not serve stale pages: the same
        query misses again and reads the new layout from disk."""
        index = _full_grid_index("hilbert", 8, buffer_pages=64)
        rect = Rect((2, 2), (5, 5))
        first = index.range_query(rect)
        assert first.pages_read > 0
        warm = index.range_query(rect)
        assert warm.pages_read == 0  # fully buffered
        index.flush()  # relayout: pool invalidated even with same data
        misses_before = index.buffer_pool.stats.misses
        cold = index.range_query(rect)
        assert cold.pages_read > 0
        assert index.buffer_pool.stats.misses > misses_before
        assert sorted(r.payload for r in cold.records) == sorted(
            r.payload for r in first.records
        )
