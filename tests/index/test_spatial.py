"""SFCIndex integration: exact results, seeks == clustering link."""

import numpy as np
import pytest

from repro.core.clustering import clustering_number
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import Record, SFCIndex


def build_index(curve, points, page_capacity=8):
    index = SFCIndex(curve, page_capacity=page_capacity)
    index.bulk_load([tuple(p) for p in points], payloads=range(len(points)))
    index.flush()
    return index


class TestCorrectness:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    def test_range_queries_return_exact_sets(self, name, rng):
        curve = make_curve(name, 16, 2)
        points = rng.integers(0, 16, size=(300, 2))
        index = build_index(curve, points)
        for _ in range(30):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 8, size=2), 15)
            rect = Rect(tuple(lo), tuple(hi))
            result = index.range_query(rect)
            expected = sorted(
                i for i, p in enumerate(points) if rect.contains(tuple(p))
            )
            assert sorted(r.payload for r in result.records) == expected

    def test_3d_index(self, rng):
        curve = make_curve("onion", 8, 3)
        points = rng.integers(0, 8, size=(200, 3))
        index = build_index(curve, points)
        rect = Rect((1, 2, 0), (5, 7, 4))
        result = index.range_query(rect)
        expected = sorted(i for i, p in enumerate(points) if rect.contains(tuple(p)))
        assert sorted(r.payload for r in result.records) == expected

    def test_duplicate_points_all_returned(self):
        curve = make_curve("onion", 8, 2)
        index = SFCIndex(curve, page_capacity=2)
        for i in range(5):
            index.insert((3, 3), payload=i)
        index.flush()
        result = index.range_query(Rect((3, 3), (3, 3)))
        assert sorted(r.payload for r in result.records) == [0, 1, 2, 3, 4]

    def test_point_query(self):
        curve = make_curve("onion", 8, 2)
        index = SFCIndex(curve)
        index.insert((2, 5), "a")
        index.insert((2, 5), "b")
        index.insert((3, 5), "c")
        payloads = {r.payload for r in index.point_query((2, 5))}
        assert payloads == {"a", "b"}
        assert index.point_query((0, 0)) == []

    def test_delete(self):
        curve = make_curve("onion", 8, 2)
        index = SFCIndex(curve)
        index.insert((1, 1), "a")
        index.insert((1, 1), "b")
        assert index.delete((1, 1), "a")
        assert not index.delete((1, 1), "a")
        assert [r.payload for r in index.point_query((1, 1))] == ["b"]
        assert index.delete((1, 1))
        assert len(index) == 0

    def test_query_refuses_oversized_rect(self):
        index = SFCIndex(make_curve("onion", 8, 2))
        with pytest.raises(InvalidQueryError):
            index.range_query(Rect((0, 0), (8, 8)))

    def test_page_capacity_guard(self):
        with pytest.raises(InvalidQueryError):
            SFCIndex(make_curve("onion", 8, 2), page_capacity=0)


class TestSeekAccounting:
    def test_runs_equal_clustering_number(self, rng):
        curve = make_curve("onion", 16, 2)
        points = rng.integers(0, 16, size=(400, 2))
        index = build_index(curve, points)
        for _ in range(20):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 8, size=2), 15)
            rect = Rect(tuple(lo), tuple(hi))
            result = index.range_query(rect)
            assert result.runs == clustering_number(curve, rect)
            assert result.seeks <= result.runs

    def test_dense_data_seeks_equal_clusters(self):
        """With every cell populated and small pages, each run needs its
        own seek: the paper's disk story becomes exact."""
        curve = make_curve("onion", 8, 2)
        index = SFCIndex(curve, page_capacity=1)
        for x in range(8):
            for y in range(8):
                index.insert((x, y))
        index.flush()
        rect = Rect((2, 1), (6, 5))
        result = index.range_query(rect)
        assert result.runs == clustering_number(curve, rect)
        assert result.seeks == result.runs
        assert len(result.records) == rect.volume

    def test_better_clustering_fewer_seeks(self):
        """The paper's bottom line, at the I/O level: on a large query the
        onion-keyed index seeks less than the hilbert-keyed one."""
        side = 32
        points = [(x, y) for x in range(side) for y in range(side)]
        rect = Rect((1, 1), (28, 28))
        seeks = {}
        for name in ("onion", "hilbert"):
            index = build_index(make_curve(name, side, 2), points, page_capacity=1)
            seeks[name] = index.range_query(rect).seeks
        assert seeks["onion"] < seeks["hilbert"]

    def test_record_dataclass(self):
        record = Record((0, 0), payload="x")
        assert record.point == (0, 0)
        assert record.payload == "x"

    def test_cost_is_seek_dominated(self):
        curve = make_curve("onion", 8, 2)
        index = build_index(curve, [(x, 0) for x in range(8)], page_capacity=2)
        res = index.range_query(Rect((0, 0), (7, 0)))
        assert res.cost() == pytest.approx(
            res.seeks * 10.1 + res.sequential_reads * 0.1
        )


class TestLifecycle:
    def test_insert_after_flush_invalidates_layout(self):
        curve = make_curve("onion", 8, 2)
        index = SFCIndex(curve)
        index.insert((0, 0), "a")
        index.flush()
        index.insert((1, 0), "b")
        result = index.range_query(Rect((0, 0), (1, 0)))  # auto-reflush
        assert sorted(r.payload for r in result.records) == ["a", "b"]

    def test_len_tracks_inserts_and_deletes(self):
        index = SFCIndex(make_curve("onion", 8, 2))
        assert len(index) == 0
        index.insert((0, 0))
        index.insert((0, 1))
        assert len(index) == 2
        index.delete((0, 0))
        assert len(index) == 1
