"""Vectorized ``SFCIndex.bulk_load``: equivalence with insert-at-a-time."""

import numpy as np
import pytest

from repro.curves import make_curve
from repro.errors import OutOfUniverseError
from repro.geometry import Rect
from repro.index import SFCIndex


def fresh_index(**kwargs):
    return SFCIndex(make_curve("onion", 16, 2), page_capacity=4, **kwargs)


class TestEquivalence:
    def test_matches_insert_loop(self, rng):
        points = [tuple(int(c) for c in p) for p in rng.integers(0, 16, size=(300, 2))]
        bulk = fresh_index()
        bulk.bulk_load(points, payloads=range(len(points)))
        loop = fresh_index()
        for i, point in enumerate(points):
            loop.insert(point, payload=i)
        assert len(bulk) == len(loop) == len(points)
        rect = Rect((0, 0), (15, 15))
        bulk_result = bulk.range_query(rect)
        loop_result = loop.range_query(rect)
        # identical records in identical on-disk order
        assert bulk_result.records == loop_result.records
        assert bulk.disk.num_pages == loop.disk.num_pages

    def test_duplicate_cells_keep_arrival_order(self):
        index = fresh_index()
        index.bulk_load([(3, 3)] * 4 + [(3, 4)], payloads=["a", "b", "c", "d", "e"])
        result = index.range_query(Rect((3, 3), (3, 3)))
        assert [r.payload for r in result.records] == ["a", "b", "c", "d"]

    def test_without_payloads(self):
        index = fresh_index()
        index.bulk_load([(0, 0), (1, 2), (0, 0)])
        assert len(index) == 3
        assert all(r.payload is None for r in index.point_query((0, 0)))

    def test_accepts_numpy_rows(self, rng):
        index = fresh_index()
        index.bulk_load(rng.integers(0, 16, size=(50, 2)))
        assert len(index) == 50

    def test_short_payloads_rejected_not_truncated(self):
        from repro.errors import InvalidQueryError

        index = fresh_index()
        with pytest.raises(InvalidQueryError):
            index.bulk_load([(0, 0), (1, 1), (2, 2)], payloads=["x"])
        assert len(index) == 0  # nothing partially loaded

    def test_infinite_payload_iterator_supported(self):
        import itertools

        index = fresh_index()
        index.bulk_load([(0, 0), (1, 1)], payloads=itertools.repeat("p"))
        assert len(index) == 2
        assert index.point_query((1, 1))[0].payload == "p"


class TestValidationAndInvalidation:
    def test_empty_load_is_noop(self):
        index = fresh_index()
        index.bulk_load([])
        assert len(index) == 0
        index.bulk_load([], payloads=[])
        assert len(index) == 0

    def test_out_of_universe_point_rejected(self):
        index = fresh_index()
        with pytest.raises(OutOfUniverseError):
            index.bulk_load([(0, 0), (16, 3)])
        with pytest.raises(OutOfUniverseError):
            index.bulk_load([(0, 0, 0)])  # wrong dimensionality

    def test_layout_invalidated_once_at_end(self):
        index = fresh_index()
        index.bulk_load([(0, 0), (1, 1)])
        index.flush()
        assert index.page_layout is not None
        index.bulk_load([(2, 2), (3, 3)])
        assert index.page_layout is None  # stale layout dropped
        result = index.range_query(Rect((0, 0), (3, 3)))  # auto-reflush
        assert len(result.records) == 4

    def test_bulk_load_after_flush_requeries_fresh_data(self):
        index = fresh_index(buffer_pages=8)
        index.bulk_load([(1, 1)], payloads=["old"])
        index.range_query(Rect((0, 0), (15, 15)))
        index.bulk_load([(2, 2)], payloads=["new"])
        result = index.range_query(Rect((0, 0), (15, 15)))
        assert sorted(r.payload for r in result.records) == ["new", "old"]
