"""Differential suite: sharded execution ≡ single-index execution.

The shard-transparency contract of :class:`ShardedSFCIndex`: for the
same records, a range query through the sharded serving layer returns
**exactly** the same record list, seek count, sequential-read count,
pages read and over-read as the unsharded :class:`SFCIndex` — across
curves, shard counts 1–8, page capacities, gap tolerances, balanced
(irregular) shard maps, and batched workloads.  These are equality
assertions, not approximations: the scatter–gather executor charges the
same page sequence the single index reads, so any drift is a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex, balanced_shards

SIDE = 16
NUM_POINTS = 300
CURVE_NAMES = ["hilbert", "zorder", "onion", "gray"]
SHARD_COUNTS = list(range(1, 9))


def _points(curve_name):
    # Seeded per curve *deterministically* (str hash() varies with
    # PYTHONHASHSEED across processes, which would make failures
    # unreproducible — the opposite of this suite's point).
    rng = np.random.default_rng(2000 + 31 * CURVE_NAMES.index(curve_name))
    return [tuple(map(int, p)) for p in rng.integers(0, SIDE, size=(NUM_POINTS, 2))]


def _rects(seed, count=10):
    rng = np.random.default_rng(seed)
    rects = []
    for _ in range(count):
        lo = rng.integers(0, SIDE, size=2)
        hi = np.minimum(lo + rng.integers(0, 10, size=2), SIDE - 1)
        rects.append(Rect(tuple(lo), tuple(hi)))
    return rects


@pytest.fixture(scope="module")
def single_indexes():
    """One flushed single-node baseline per curve."""
    indexes = {}
    for name in CURVE_NAMES:
        index = SFCIndex(make_curve(name, SIDE, 2), page_capacity=4)
        index.bulk_load(_points(name))
        index.flush()
        indexes[name] = index
    return indexes


def _sharded(name, num_shards, page_capacity=4, **kwargs):
    index = ShardedSFCIndex(
        make_curve(name, SIDE, 2),
        num_shards=num_shards,
        page_capacity=page_capacity,
        **kwargs,
    )
    index.bulk_load(_points(name))
    index.flush()
    return index


def _assert_equivalent(a, b, context=""):
    """The full observational-equality contract between two results."""
    assert a.records == b.records, f"records differ {context}"
    assert a.seeks == b.seeks, f"seeks differ {context}"
    assert a.sequential_reads == b.sequential_reads, f"sequential differ {context}"
    assert a.pages_read == b.pages_read, f"pages differ {context}"
    assert a.over_read == b.over_read, f"over_read differs {context}"


def _park_heads(*indexes):
    """Park both disks' heads so seek accounting starts from the same
    state (the shared single-index baseline carries its head position
    across tests; a freshly built sharded index starts parked)."""
    for index in indexes:
        index.disk.reset_stats()


# ----------------------------------------------------------------------
# The core differential sweep: 4 curves x shard counts 1-8
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CURVE_NAMES)
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
class TestShardTransparency:
    def test_range_queries_identical(self, single_indexes, name, num_shards):
        single = single_indexes[name]
        sharded = _sharded(name, num_shards)
        _park_heads(single, sharded)
        for i, rect in enumerate(_rects(seed=num_shards * 101 + 7)):
            _assert_equivalent(
                single.range_query(rect),
                sharded.range_query(rect),
                context=f"({name}, {num_shards} shards, rect {i} {rect})",
            )

    def test_gap_tolerance_identical(self, single_indexes, name, num_shards):
        single = single_indexes[name]
        sharded = _sharded(name, num_shards)
        _park_heads(single, sharded)
        for gap in (1, 5, 64):
            for rect in _rects(seed=num_shards * 13 + gap, count=4):
                _assert_equivalent(
                    single.range_query(rect, gap_tolerance=gap),
                    sharded.range_query(rect, gap_tolerance=gap),
                    context=f"({name}, {num_shards} shards, gap {gap}, {rect})",
                )

    def test_batch_identical(self, single_indexes, name, num_shards):
        single = single_indexes[name]
        sharded = _sharded(name, num_shards)
        _park_heads(single, sharded)
        rects = _rects(seed=num_shards * 29, count=20)
        batch_single = single.range_query_batch(rects)
        batch_sharded = sharded.range_query_batch(rects)
        assert batch_single.executed_order == batch_sharded.executed_order
        assert batch_single.total_seeks == batch_sharded.total_seeks
        assert (
            batch_single.total_sequential_reads
            == batch_sharded.total_sequential_reads
        )
        assert batch_single.total_pages_read == batch_sharded.total_pages_read
        assert batch_single.total_over_read == batch_sharded.total_over_read
        for i, (a, b) in enumerate(zip(batch_single.results, batch_sharded.results)):
            _assert_equivalent(a, b, context=f"({name}, {num_shards}, batch[{i}])")


# ----------------------------------------------------------------------
# Plans predict the same I/O the single index predicts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", CURVE_NAMES)
def test_sharded_plan_wraps_the_single_plan(single_indexes, name):
    single = single_indexes[name]
    sharded = _sharded(name, num_shards=5)
    for rect in _rects(seed=3):
        splan = sharded.plan(rect)
        plan = single.plan(rect)
        assert splan.plan.runs == plan.runs
        assert splan.plan.scan_runs == plan.scan_runs
        assert splan.estimated_seeks == plan.estimated_seeks
        assert splan.estimated_pages == plan.estimated_pages
        assert splan.clustering == plan.clustering


# ----------------------------------------------------------------------
# Other axes: page capacity, balanced maps, rebalance, workers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("page_capacity", [1, 3, 16, 64])
def test_transparency_for_any_page_capacity(page_capacity):
    name = "onion"
    single = SFCIndex(make_curve(name, SIDE, 2), page_capacity=page_capacity)
    single.bulk_load(_points(name))
    single.flush()
    sharded = _sharded(name, num_shards=6, page_capacity=page_capacity)
    for rect in _rects(seed=page_capacity):
        _assert_equivalent(
            single.range_query(rect),
            sharded.range_query(rect),
            context=f"(page_capacity {page_capacity}, {rect})",
        )


def test_transparency_with_balanced_shard_map(single_indexes):
    name = "hilbert"
    curve = make_curve(name, SIDE, 2)
    keys = [int(k) for k in curve.index_many(np.asarray(_points(name)))]
    shards = balanced_shards(keys, 6, curve.size)
    sharded = ShardedSFCIndex(curve, shards=shards, page_capacity=4)
    sharded.bulk_load(_points(name))
    sharded.flush()
    _park_heads(single_indexes[name], sharded)
    for rect in _rects(seed=77):
        _assert_equivalent(
            single_indexes[name].range_query(rect),
            sharded.range_query(rect),
            context=f"(balanced map, {rect})",
        )


def test_transparency_survives_rebalance(single_indexes):
    name = "zorder"
    sharded = _sharded(name, num_shards=4)
    sharded.rebalance(num_shards=7)
    loads = sharded.shard_loads
    assert sum(loads) == NUM_POINTS
    assert max(loads) <= 2 * min(loads) + 1  # quantile cuts balance the load
    _park_heads(single_indexes[name], sharded)
    for rect in _rects(seed=91):
        _assert_equivalent(
            single_indexes[name].range_query(rect),
            sharded.range_query(rect),
            context=f"(rebalanced, {rect})",
        )


@pytest.mark.parametrize("max_workers", [0, 1, 3, None])
def test_transparency_for_any_worker_count(single_indexes, max_workers):
    name = "onion"
    sharded = _sharded(name, num_shards=8, max_workers=max_workers)
    _park_heads(single_indexes[name], sharded)
    for rect in _rects(seed=5, count=5):
        _assert_equivalent(
            single_indexes[name].range_query(rect),
            sharded.range_query(rect),
            context=f"(max_workers {max_workers}, {rect})",
        )


def test_mutations_preserve_transparency():
    """Insert/delete through the routed write paths, then re-compare."""
    name = "gray"
    curve = make_curve(name, SIDE, 2)
    single = SFCIndex(curve, page_capacity=4)
    sharded = ShardedSFCIndex(curve, num_shards=5, page_capacity=4)
    pts = _points(name)
    for index in (single, sharded):
        index.bulk_load(pts)
    for extra in ((0, 0), (15, 15), (7, 8), (7, 8)):
        single.insert(extra, payload="x")
        sharded.insert(extra, payload="x")
    assert single.delete((7, 8), payload="x")
    assert sharded.delete((7, 8), payload="x")
    single.flush()
    sharded.flush()
    assert len(single) == len(sharded)
    for rect in _rects(seed=123):
        _assert_equivalent(
            single.range_query(rect), sharded.range_query(rect), context=f"{rect}"
        )
    assert single.point_query((7, 8)) == sharded.point_query((7, 8))


# ----------------------------------------------------------------------
# Randomized property: hypothesis drives dataset, shards and query
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(CURVE_NAMES),
    num_shards=st.integers(1, 8),
    page_capacity=st.sampled_from([1, 2, 5]),
    gap=st.sampled_from([0, 3]),
    seed=st.integers(0, 2**31),
)
def test_transparency_property(name, num_shards, page_capacity, gap, seed):
    rng = np.random.default_rng(seed)
    side = 8
    curve = make_curve(name, side, 2)
    pts = [tuple(map(int, p)) for p in rng.integers(0, side, size=(60, 2))]
    single = SFCIndex(curve, page_capacity=page_capacity)
    sharded = ShardedSFCIndex(
        curve, num_shards=num_shards, page_capacity=page_capacity
    )
    single.bulk_load(pts)
    sharded.bulk_load(pts)
    lo = rng.integers(0, side, size=2)
    hi = np.minimum(lo + rng.integers(0, side, size=2), side - 1)
    rect = Rect(tuple(lo), tuple(hi))
    _assert_equivalent(
        single.range_query(rect, gap_tolerance=gap),
        sharded.range_query(rect, gap_tolerance=gap),
        context=f"({name}, {num_shards}, cap {page_capacity}, gap {gap}, {rect})",
    )
