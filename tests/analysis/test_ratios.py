"""Approximation ratios: the paper's constants 2.32 and 3.4."""

import pytest

from repro.analysis.ratios import (
    ETA_BOUND_2D,
    ETA_BOUND_3D,
    PHI_STAR_2D,
    PHI_STAR_3D,
    eta_cube_2d,
    eta_cube_3d,
    eta_sweep,
    maximize_eta_2d,
    maximize_eta_3d,
    measured_eta,
    measured_eta_continuous,
)
from repro.curves import make_curve


class TestAnalyticCurves:
    def test_2d_maximum_reproduces_232(self):
        """Table I headline: max_phi eta(phi) = 2.32 at phi = 0.355."""
        phi, eta = maximize_eta_2d()
        assert eta == pytest.approx(ETA_BOUND_2D, abs=0.01)
        assert phi == pytest.approx(PHI_STAR_2D, abs=0.005)

    def test_3d_maximum_reproduces_34(self):
        """Table I headline: max_phi eta(phi) = 3.4 at phi = 0.3967."""
        phi, eta = maximize_eta_3d()
        assert eta == pytest.approx(ETA_BOUND_3D, abs=0.02)
        assert phi == pytest.approx(PHI_STAR_3D, abs=0.005)

    def test_2d_curve_tends_to_2_at_extremes(self):
        """Cases II and IV of Section V-D: eta -> 2 away from the hump."""
        assert eta_cube_2d(1e-6) == pytest.approx(2.0, abs=1e-3)
        assert eta_cube_2d(0.5) == pytest.approx(2.0, abs=1e-9)

    def test_3d_curve_tends_to_2_at_extremes(self):
        assert eta_cube_3d(1e-6) == pytest.approx(2.0, abs=1e-3)
        assert eta_cube_3d(0.5) == pytest.approx(2.0, abs=1e-9)

    def test_curves_stay_below_their_bounds(self):
        for i in range(1, 100):
            phi = i / 200
            assert eta_cube_2d(phi) <= ETA_BOUND_2D + 1e-6
            assert eta_cube_3d(phi) <= ETA_BOUND_3D + 1e-6


class TestMeasuredRatios:
    def test_measured_2d_matches_analytic_at_worst_phi(self):
        """At the maximizer, the finite-side measured 2η' approaches the
        analytic 2.32 (within finite-size slack at side 128)."""
        curve = make_curve("onion", 128, 2)
        length = round(PHI_STAR_2D * 128)
        eta = measured_eta(curve, (length, length))
        assert eta == pytest.approx(ETA_BOUND_2D, abs=0.12)

    def test_measured_eta_is_twice_continuous(self):
        curve = make_curve("onion", 64, 2)
        assert measured_eta(curve, (20, 20)) == pytest.approx(
            2 * measured_eta_continuous(curve, (20, 20))
        )

    def test_onion_beats_hilbert_on_large_cubes(self):
        side = 64
        onion = make_curve("onion", side, 2)
        hilbert = make_curve("hilbert", side, 2)
        lengths = (side - 6, side - 6)
        assert measured_eta(onion, lengths) < measured_eta(hilbert, lengths) / 3

    def test_eta_sweep_shape(self):
        onion = make_curve("onion", 64, 2)
        result = eta_sweep([onion], [0.25, 0.5])
        assert set(result) == {"onion"}
        assert [phi for phi, _ in result["onion"]] == [0.25, 0.5]
        assert all(eta > 0 for _, eta in result["onion"])

    def test_onion_ratio_bounded_across_phis_2d(self):
        """The measurable counterpart of 'near-optimal for all cube sizes':
        at side 128 the onion ratio stays under the bound plus finite-size
        slack for every phi <= 1/2."""
        curve = make_curve("onion", 128, 2)
        sweep = eta_sweep([curve], [0.1, 0.2, 0.3, 0.4, 0.5])["onion"]
        for phi, eta in sweep:
            assert eta <= ETA_BOUND_2D + 0.15, (phi, eta)
