"""Lower bounds: definitional λ/T numerics and the paper's closed forms."""

import numpy as np
import pytest

from repro.analysis.exact import exact_average_clustering
from repro.analysis.lower_bounds import (
    lambda_map,
    lemma7_lambda,
    lemma8_t_closed,
    lower_bound_any,
    lower_bound_continuous,
    t_sum,
    theorem2_lb,
    theorem5_lb_3d,
)
from repro.core.edges import gamma_pair
from repro.curves import make_curve
from repro.errors import InvalidQueryError


def brute_lambda(side, lengths, cell):
    """Definition 2 by enumeration of the neighbors."""
    dim = len(lengths)
    best = None
    for axis in range(dim):
        for direction in (-1, 1):
            neighbor = list(cell)
            neighbor[axis] += direction
            if not 0 <= neighbor[axis] < side:
                continue
            g = gamma_pair(side, lengths, tuple(cell), tuple(neighbor))
            best = g if best is None else min(best, g)
    return best


class TestLambdaMap:
    @pytest.mark.parametrize("lengths", [(2, 3), (5, 5), (7, 9), (1, 10)])
    def test_matches_definition_2d(self, lengths):
        side = 10
        lam = lambda_map(side, lengths).reshape(side, side)
        for i in range(side):
            for j in range(side):
                assert lam[i, j] == brute_lambda(side, lengths, (i, j))

    def test_matches_definition_3d(self):
        side, lengths = 6, (2, 3, 4)
        lam = lambda_map(side, lengths).reshape(side, side, side)
        for i in range(side):
            for j in range(side):
                for k in range(side):
                    assert lam[i, j, k] == brute_lambda(side, lengths, (i, j, k))

    def test_symmetry(self):
        """λ inherits the reflection symmetries the paper states."""
        side, lengths = 12, (4, 4)
        lam = lambda_map(side, lengths).reshape(side, side)
        assert (lam == lam.T).all()
        assert (lam == lam[::-1, :]).all()
        assert (lam == lam[:, ::-1]).all()


class TestLemma7:
    """Exact in the small regime; a documented overcount in the large one."""

    @pytest.mark.parametrize("side", [12, 16])
    def test_small_regime_exact(self, side):
        m = side // 2
        for lengths in [(2, 3), (3, m), (m, m), (1, 2)]:
            lam = lambda_map(side, lengths).reshape(side, side)
            for i in range(m):
                for j in range(m):
                    assert lemma7_lambda(side, lengths, i, j) == lam[i, j], (
                        lengths,
                        i,
                        j,
                    )

    @pytest.mark.parametrize("side", [12, 16])
    def test_large_regime_never_undercounts(self, side):
        """Where Lemma 7 drifts from the definition it is an overcount,
        so the paper's T stays an upper bound on the definitional T."""
        m = side // 2
        for lengths in [(m + 1, m + 2), (side - 1, side - 1)]:
            lam = lambda_map(side, lengths).reshape(side, side)
            for i in range(m):
                for j in range(m):
                    assert lemma7_lambda(side, lengths, i, j) >= lam[i, j]

    def test_mixed_regime_rejected(self):
        with pytest.raises(InvalidQueryError):
            lemma7_lambda(16, (3, 12), 0, 0)

    def test_quadrant_guard(self):
        with pytest.raises(InvalidQueryError):
            lemma7_lambda(16, (2, 2), 8, 0)


class TestLemma8:
    @pytest.mark.parametrize("side", [12, 16, 32])
    def test_small_regime_tracks_direct_sum(self, side):
        """Closed form within an additive O(side) of the definitional T
        (the observed drift is exactly m − 3, inside the paper's o(nℓ)
        slack)."""
        m = side // 2
        for lengths in [(2, 3), (3, m), (m, m), (m // 2, m)]:
            closed = lemma8_t_closed(side, lengths)
            direct = t_sum(side, lengths)
            assert abs(closed - direct) <= side

    def test_large_regime_upper_bounds_direct_sum(self):
        side = 16
        for lengths in [(10, 11), (15, 15), (9, 9)]:
            assert lemma8_t_closed(side, lengths) >= t_sum(side, lengths)

    def test_mixed_regime_rejected(self):
        with pytest.raises(InvalidQueryError):
            lemma8_t_closed(16, (3, 12))


class TestBoundsHold:
    """The fundamental soundness property: LB ≤ c for every curve."""

    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake"])
    @pytest.mark.parametrize("lengths", [(3, 3), (5, 9), (8, 8), (14, 14)])
    def test_continuous_bound_2d(self, name, lengths):
        side = 16
        curve = make_curve(name, side, 2)
        c = exact_average_clustering(curve, lengths)
        assert lower_bound_continuous(side, lengths) <= c + 1e-9

    @pytest.mark.parametrize("name", ["zorder", "gray", "rowmajor", "columnmajor"])
    @pytest.mark.parametrize("lengths", [(3, 3), (5, 9), (8, 8)])
    def test_any_bound_2d(self, name, lengths):
        side = 16
        curve = make_curve(name, side, 2)
        c = exact_average_clustering(curve, lengths)
        assert lower_bound_any(side, lengths) <= c + 1e-9

    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake"])
    @pytest.mark.parametrize("length", [2, 4, 6])
    def test_bounds_3d(self, name, length):
        side = 8
        curve = make_curve(name, side, 3)
        lengths = (length,) * 3
        c = exact_average_clustering(curve, lengths)
        if curve.is_continuous:
            assert lower_bound_continuous(side, lengths) <= c + 1e-9
        assert lower_bound_any(side, lengths) <= c + 1e-9

    def test_any_is_half_of_continuous(self):
        assert lower_bound_any(16, (4, 6)) == pytest.approx(
            0.5 * lower_bound_continuous(16, (4, 6))
        )

    def test_unfit_lengths_rejected(self):
        with pytest.raises(InvalidQueryError):
            lower_bound_continuous(8, (9, 1))


class TestClosedFormBounds:
    def test_theorem2_close_to_numeric_small_regime(self):
        side = 128
        for lengths in [(5, 10), (20, 30), (64, 64)]:
            closed = theorem2_lb(side, lengths)
            numeric = lower_bound_continuous(side, lengths)
            assert closed == pytest.approx(numeric, rel=0.05)

    def test_theorem2_mixed_regime_rejected(self):
        with pytest.raises(InvalidQueryError):
            theorem2_lb(128, (10, 100))

    def test_theorem5_sound_against_exact_onion(self):
        """The (transcription-corrected) 3-d LB never exceeds the measured
        onion clustering."""
        side = 16
        onion = make_curve("onion", side, 3)
        for length in [2, 4, 6, 8, 10, 14]:
            lb = theorem5_lb_3d(side, length)
            c = exact_average_clustering(onion, (length,) * 3)
            assert lb <= c + 1e-9

    def test_theorem5_tracks_numeric_shape(self):
        """Closed and numeric 3-d bounds agree within ~35% at side 16
        (the theorem's o(ℓ²) residue at small sides)."""
        side = 16
        for length in [4, 6, 8]:
            closed = theorem5_lb_3d(side, length)
            numeric = lower_bound_continuous(side, (length,) * 3)
            assert closed == pytest.approx(numeric, rel=0.35)

    def test_theorem5_guards(self):
        with pytest.raises(InvalidQueryError):
            theorem5_lb_3d(15, 4)
        with pytest.raises(InvalidQueryError):
            theorem5_lb_3d(16, 1)
