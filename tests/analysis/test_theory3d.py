"""Theorem 4 against the exact average clustering of the 3-d onion curve."""

import pytest

from repro.analysis.exact import exact_average_clustering
from repro.analysis.theory3d import theorem4_is_upper_bound, theorem4_value
from repro.curves import make_curve
from repro.errors import InvalidQueryError


class TestTheorem4:
    @pytest.mark.parametrize("side", [16, 32])
    def test_small_regime_relative_accuracy(self, side):
        """The ℓ ≤ m expression carries o(ℓ²); at these sides it tracks the
        exact value within 20%."""
        onion = make_curve("onion", side, 3)
        m = side // 2
        for length in [3, m // 2, m - 1]:
            value = theorem4_value(side, length)
            exact = exact_average_clustering(onion, (length,) * 3)
            assert value == pytest.approx(exact, rel=0.20), (side, length)

    def test_relative_error_shrinks_with_side(self):
        """The o(ℓ²) residue vanishes: doubling the side improves accuracy."""
        errors = []
        for side in (16, 32, 64):
            length = side // 4
            onion = make_curve("onion", side, 3)
            exact = exact_average_clustering(onion, (length,) * 3)
            value = theorem4_value(side, length)
            errors.append(abs(exact - value) / exact)
        assert errors[2] < errors[0]

    @pytest.mark.parametrize("side", [16, 32])
    def test_large_regime_is_upper_bound(self, side):
        onion = make_curve("onion", side, 3)
        m = side // 2
        for length in [m + 1, side - 4, side - 2]:
            assert theorem4_is_upper_bound(side, length)
            value = theorem4_value(side, length)
            exact = exact_average_clustering(onion, (length,) * 3)
            assert value >= exact - 1e-9, (side, length, value, exact)

    def test_small_regime_not_flagged_as_bound(self):
        assert not theorem4_is_upper_bound(16, 4)

    def test_guards(self):
        with pytest.raises(InvalidQueryError):
            theorem4_value(15, 3)
        with pytest.raises(InvalidQueryError):
            theorem4_value(16, 0)
        with pytest.raises(InvalidQueryError):
            theorem4_value(16, 17)
