"""Theorem 1 against the exact average clustering of the onion curve."""

import pytest

from repro.analysis.exact import exact_average_clustering
from repro.analysis.theory2d import near_cube_estimate, theorem1_value
from repro.curves import make_curve
from repro.errors import InvalidQueryError


class TestTheorem1:
    @pytest.mark.parametrize("side", [32, 64, 128])
    def test_small_regime_within_tolerance(self, side):
        onion = make_curve("onion", side, 2)
        m = side // 2
        for lengths in [(2, 3), (5, m // 2), (m // 2, m), (m, m)]:
            value, tol = theorem1_value(side, lengths)
            exact = exact_average_clustering(onion, lengths)
            assert abs(exact - value) <= tol, (side, lengths, exact, value)

    @pytest.mark.parametrize("side", [32, 64, 128])
    def test_large_regime_within_tolerance(self, side):
        onion = make_curve("onion", side, 2)
        m = side // 2
        for lengths in [(m + 2, m + 5), (side - 3, side - 2), (side - 1, side - 1)]:
            value, tol = theorem1_value(side, lengths)
            exact = exact_average_clustering(onion, lengths)
            assert abs(exact - value) <= tol, (side, lengths, exact, value)

    def test_length_order_is_irrelevant(self):
        assert theorem1_value(64, (5, 9)) == theorem1_value(64, (9, 5))

    def test_mixed_regime_rejected(self):
        with pytest.raises(InvalidQueryError):
            theorem1_value(64, (10, 50))

    def test_odd_side_rejected(self):
        with pytest.raises(InvalidQueryError):
            theorem1_value(63, (3, 3))

    def test_wrong_dim_rejected(self):
        with pytest.raises(InvalidQueryError):
            theorem1_value(64, (3, 3, 3))

    def test_remark_value_at_half_side_cube(self):
        """The near-cube remark: c(Q(m, m), O) ~ 2m/3."""
        side = 256
        m = side // 2
        value, _ = theorem1_value(side, (m, m))
        assert value == pytest.approx(2 * m / 3, rel=0.05)


class TestNearCubeEstimate:
    def test_mixed_regime_estimate_covers_exact(self):
        """For ℓ₁ ≤ m ≤ ℓ₂ with small ψ's the 2m/3 estimate holds within
        the stated slack."""
        side = 128
        m = side // 2
        onion = make_curve("onion", side, 2)
        for lengths in [(m - 2, m + 2), (m - 4, m + 1), (m, m + 3)]:
            estimate, slack = near_cube_estimate(side, lengths)
            exact = exact_average_clustering(onion, lengths)
            assert abs(exact - estimate) <= slack

    def test_wrong_dim_rejected(self):
        with pytest.raises(InvalidQueryError):
            near_cube_estimate(64, (3,))
