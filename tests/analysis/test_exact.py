"""Exact average clustering (Lemma 1) against brute-force enumeration."""

import numpy as np
import pytest

from repro.analysis.exact import exact_average_clustering, total_edge_crossings
from repro.core.clustering import clustering_number
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import all_translations


def brute_force_average(curve, lengths):
    queries = list(all_translations(curve.side, lengths))
    return float(
        np.mean([clustering_number(curve, q) for q in queries])
    )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    @pytest.mark.parametrize("lengths", [(1, 1), (2, 2), (3, 5), (8, 3), (12, 12)])
    def test_2d(self, name, lengths):
        curve = make_curve(name, 16, 2)
        assert exact_average_clustering(curve, lengths) == pytest.approx(
            brute_force_average(curve, lengths)
        )

    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake"])
    @pytest.mark.parametrize("lengths", [(2, 2, 2), (3, 5, 2), (7, 7, 7)])
    def test_3d(self, name, lengths):
        curve = make_curve(name, 8, 3)
        assert exact_average_clustering(curve, lengths) == pytest.approx(
            brute_force_average(curve, lengths)
        )

    def test_discontinuous_curve_with_jumps(self):
        """The 3-d onion's piece jumps must be handled exactly."""
        curve = make_curve("onion", 8, 3)
        lengths = (5, 4, 6)
        assert exact_average_clustering(curve, lengths) == pytest.approx(
            brute_force_average(curve, lengths)
        )


class TestBatching:
    def test_batch_size_does_not_change_result(self):
        curve = make_curve("onion", 16, 2)
        lengths = (5, 7)
        full = exact_average_clustering(curve, lengths, batch_size=1 << 20)
        tiny = exact_average_clustering(curve, lengths, batch_size=7)
        assert full == pytest.approx(tiny)

    def test_total_crossings_batch_invariant(self):
        curve = make_curve("hilbert", 16, 2)
        assert total_edge_crossings(curve, (4, 4), batch_size=11) == (
            total_edge_crossings(curve, (4, 4), batch_size=1000)
        )


class TestEdgeCases:
    def test_full_universe_query(self):
        curve = make_curve("onion", 8, 2)
        # Single placement covering everything: exactly one cluster.
        assert exact_average_clustering(curve, (8, 8)) == pytest.approx(1.0)

    def test_unit_query_always_one_cluster(self):
        curve = make_curve("zorder", 8, 2)
        assert exact_average_clustering(curve, (1, 1)) == pytest.approx(1.0)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            exact_average_clustering(make_curve("onion", 8, 2), (2, 2, 2))

    def test_oversized_rejected(self):
        with pytest.raises(InvalidQueryError):
            exact_average_clustering(make_curve("onion", 8, 2), (9, 2))


class TestTheoremConsistency:
    def test_row_query_average_on_rowmajor(self):
        """Full-width queries on the row-major curve are single clusters."""
        curve = make_curve("rowmajor", 16, 2)
        assert exact_average_clustering(curve, (16, 1)) == pytest.approx(1.0)

    def test_column_query_average_on_rowmajor(self):
        curve = make_curve("rowmajor", 16, 2)
        assert exact_average_clustering(curve, (1, 16)) == pytest.approx(16.0)
