"""The exact difference-array clustering distribution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.distribution import exact_cluster_distribution
from repro.analysis.exact import exact_average_clustering
from repro.core.clustering import clustering_number
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import all_translations


def brute_distribution(curve, lengths):
    extents = tuple(curve.side - l + 1 for l in lengths)
    out = np.zeros(extents, dtype=np.int64)
    for q in all_translations(curve.side, lengths):
        out[q.lo] = clustering_number(curve, q)
    return out


class TestExactness:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    @pytest.mark.parametrize("lengths", [(2, 2), (3, 5), (7, 7), (15, 2)])
    def test_matches_brute_force_2d(self, name, lengths):
        curve = make_curve(name, 16, 2)
        dist = exact_cluster_distribution(curve, lengths)
        assert (dist == brute_distribution(curve, lengths)).all()

    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake"])
    @pytest.mark.parametrize("lengths", [(2, 3, 4), (5, 5, 5)])
    def test_matches_brute_force_3d(self, name, lengths):
        curve = make_curve(name, 8, 3)
        dist = exact_cluster_distribution(curve, lengths)
        assert (dist == brute_distribution(curve, lengths)).all()

    @given(st.integers(0, 2**31))
    def test_random_shapes_on_onion(self, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve("onion", 12, 2)
        lengths = tuple(int(v) for v in rng.integers(1, 13, size=2))
        dist = exact_cluster_distribution(curve, lengths)
        assert (dist == brute_distribution(curve, lengths)).all()

    def test_mean_equals_lemma1_average(self):
        curve = make_curve("hilbert", 32, 2)
        for lengths in [(5, 9), (20, 20), (31, 2)]:
            dist = exact_cluster_distribution(curve, lengths)
            assert dist.mean() == pytest.approx(
                exact_average_clustering(curve, lengths)
            )

    def test_batching_invariant(self):
        curve = make_curve("onion", 16, 2)
        a = exact_cluster_distribution(curve, (5, 7), batch_size=13)
        b = exact_cluster_distribution(curve, (5, 7))
        assert (a == b).all()

    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    def test_sweep_and_edges_engines_agree(self, name):
        """The displacement-stencil sweep and the per-edge difference
        array are independent implementations of the same grid."""
        curve = make_curve(name, 16, 2)
        for lengths in [(2, 2), (5, 9), (16, 3), (15, 15)]:
            sweep = exact_cluster_distribution(curve, lengths, method="sweep")
            edges = exact_cluster_distribution(curve, lengths, method="edges")
            assert (sweep == edges).all(), (name, lengths)

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidQueryError):
            exact_cluster_distribution(make_curve("onion", 8, 2), (2, 2), method="guess")

    def test_sweep_average_matches_lemma1_closed_form(self):
        """exact_average_clustering(method="sweep") == the γ identity."""
        for name in ("hilbert", "zorder"):
            curve = make_curve(name, 16, 2)
            for lengths in [(3, 3), (9, 5), (16, 1)]:
                assert exact_average_clustering(
                    curve, lengths, method="sweep"
                ) == pytest.approx(exact_average_clustering(curve, lengths))


class TestShapeAndGuards:
    def test_output_shape(self):
        curve = make_curve("onion", 16, 2)
        dist = exact_cluster_distribution(curve, (3, 5))
        assert dist.shape == (14, 12)

    def test_full_size_query(self):
        curve = make_curve("onion", 8, 2)
        dist = exact_cluster_distribution(curve, (8, 8))
        assert dist.shape == (1, 1)
        assert dist[0, 0] == 1

    def test_all_counts_positive(self):
        curve = make_curve("zorder", 16, 2)
        assert (exact_cluster_distribution(curve, (6, 6)) >= 1).all()

    def test_dim_mismatch(self):
        with pytest.raises(InvalidQueryError):
            exact_cluster_distribution(make_curve("onion", 8, 2), (2, 2, 2))

    def test_oversized(self):
        with pytest.raises(InvalidQueryError):
            exact_cluster_distribution(make_curve("onion", 8, 2), (9, 1))
