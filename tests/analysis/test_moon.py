"""Moon et al.'s constant-query law across curves."""

import pytest

from repro.analysis.exact import exact_average_clustering
from repro.analysis.moon import moon_limit, surface_area
from repro.curves import make_curve
from repro.errors import InvalidQueryError


class TestFormulas:
    def test_surface_area_2d(self):
        # A 3x5 rect: 2*5 + 2*3 = 16 boundary-facing units.
        assert surface_area((3, 5)) == 16

    def test_surface_area_3d(self):
        # The unit cube of side 2: 6 faces of 4 cells.
        assert surface_area((2, 2, 2)) == 24

    def test_moon_limit_2d_square(self):
        # 2x2 square: SA = 8, 2d = 4 -> 2 clusters on average.
        assert moon_limit((2, 2)) == pytest.approx(2.0)

    def test_moon_limit_3d_cube(self):
        assert moon_limit((2, 2, 2)) == pytest.approx(4.0)

    def test_guards(self):
        with pytest.raises(InvalidQueryError):
            surface_area(())
        with pytest.raises(InvalidQueryError):
            surface_area((0, 2))


class TestConvergence:
    """Every continuous curve converges to the same constant-query limit."""

    @pytest.mark.parametrize("name", ["onion", "hilbert"])
    @pytest.mark.parametrize("lengths", [(2, 2), (3, 4)])
    def test_2d_balanced_curves(self, name, lengths):
        """Direction-balanced continuous curves hit SA/2d for any shape."""
        limit = moon_limit(lengths)
        errors = []
        for side in (32, 64, 128):
            curve = make_curve(name, side, 2)
            value = exact_average_clustering(curve, lengths)
            errors.append(abs(value - limit))
        assert errors[-1] < errors[0] or errors[-1] < 0.05 * limit
        assert errors[-1] / limit < 0.15, (name, lengths, errors)

    def test_snake_hits_limit_only_for_squares(self):
        """The snake curve is direction-degenerate: SA/2d for squares,
        but ℓ₂ (its dominant-direction crossing count) for rectangles."""
        square = exact_average_clustering(make_curve("snake", 128, 2), (2, 2))
        assert square == pytest.approx(moon_limit((2, 2)), rel=0.05)
        rect = exact_average_clustering(make_curve("snake", 128, 2), (3, 4))
        assert rect == pytest.approx(4.0, rel=0.05)  # ℓ₂, not SA/2d = 3.5

    def test_peano_converges_too(self):
        limit = moon_limit((2, 2))
        value = exact_average_clustering(make_curve("peano", 81, 2), (2, 2))
        assert value == pytest.approx(limit, rel=0.1)

    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake"])
    def test_3d_continuous_curves(self, name):
        limit = moon_limit((2, 2, 2))
        value = exact_average_clustering(make_curve(name, 32, 3), (2, 2, 2))
        assert value == pytest.approx(limit, rel=0.15), name

    def test_z_curve_exceeds_the_continuous_limit(self):
        """Continuity is necessary: the Z curve's jumps cost extra
        clusters even on constant queries."""
        limit = moon_limit((2, 2))
        value = exact_average_clustering(make_curve("zorder", 128, 2), (2, 2))
        assert value > limit * 1.1

    def test_onion_matches_hilbert_at_constant_queries(self):
        """The µ = 0 story: at constant query sizes the curves tie —
        the onion curve's advantage is a large-query phenomenon."""
        side = 128
        lengths = (3, 3)
        onion = exact_average_clustering(make_curve("onion", side, 2), lengths)
        hilbert = exact_average_clustering(make_curve("hilbert", side, 2), lengths)
        assert onion == pytest.approx(hilbert, rel=0.05)
