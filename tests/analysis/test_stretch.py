"""Stretch metrics (the Gotsman–Lindenbaum locality measure)."""

import numpy as np
import pytest

from repro.analysis.stretch import (
    StretchReport,
    gotsman_lindenbaum_stretch,
    neighbor_stretch,
)
from repro.curves import make_curve


class TestNeighborStretch:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "snake", "peano"])
    def test_continuous_curves_have_unit_stretch(self, name):
        side = 9 if name == "peano" else 16
        report = neighbor_stretch(make_curve(name, side, 2))
        assert report.worst == 1.0
        assert report.average == pytest.approx(1.0)

    def test_rowmajor_jumps_a_full_row(self):
        report = neighbor_stretch(make_curve("rowmajor", 16, 2))
        assert report.worst == 16.0  # wrap from (15, y) to (0, y+1)

    def test_zorder_has_large_jumps(self):
        report = neighbor_stretch(make_curve("zorder", 16, 2))
        assert report.worst > 2
        assert report.average > 1.0

    def test_onion3d_jump_bounded_by_layer(self):
        report = neighbor_stretch(make_curve("onion", 8, 3))
        assert report.worst > 1  # the piece jumps
        assert report.average < 2.0  # but they are rare

    def test_batching_invariant(self):
        curve = make_curve("hilbert", 16, 2)
        a = neighbor_stretch(curve, batch_size=17)
        b = neighbor_stretch(curve)
        assert a == b


class TestGotsmanLindenbaum:
    def test_hilbert_stretch_is_bounded(self):
        """Hilbert's classic locality: d² ≤ 6·|Δkey| (known constant)."""
        report = gotsman_lindenbaum_stretch(make_curve("hilbert", 32, 2))
        assert report.worst <= 6.5

    def test_rowmajor_stretch_is_linear(self):
        """Adjacent rows' cells are 1 apart in grid, side apart in key …
        while cells side-apart in key can be distance ~1: stretch ~ side."""
        side = 32
        report = gotsman_lindenbaum_stretch(make_curve("rowmajor", side, 2))
        assert report.worst >= side / 4

    def test_onion_stretch_worse_than_hilbert(self):
        """The trade-off the paper's conclusion hints at: the onion curve
        buys clustering at some cost in stretch (opposite boundary cells
        are close in key space only near the layer seam)."""
        side = 32
        onion = gotsman_lindenbaum_stretch(make_curve("onion", side, 2))
        hilbert = gotsman_lindenbaum_stretch(make_curve("hilbert", side, 2))
        assert onion.worst > hilbert.worst

    def test_exhaustive_and_sampled_agree_in_order_of_magnitude(self):
        curve = make_curve("hilbert", 8, 2)  # small: exhaustive path
        exhaustive = gotsman_lindenbaum_stretch(curve)
        sampled = gotsman_lindenbaum_stretch(
            curve, exhaustive_limit=0, sample_pairs=5000,
            rng=np.random.default_rng(1),
        )
        assert sampled.worst <= exhaustive.worst + 1e-9
        assert sampled.average == pytest.approx(exhaustive.average, rel=0.5)

    def test_report_is_frozen_dataclass(self):
        report = StretchReport(worst=2.0, average=1.0)
        with pytest.raises(AttributeError):
            report.worst = 3.0
