"""Lemma 5: the Hilbert curve diverges on near-full cubes, the onion
curve does not."""

import pytest

from repro.analysis.hilbert_gap import ScalingRow, growth_ratios, scaling_experiment


class TestScalingExperiment2D:
    @pytest.fixture(scope="class")
    def rows(self):
        return scaling_experiment([32, 64, 128], dim=2, margin=10)

    def test_hilbert_at_least_doubles(self, rows):
        """Lemma 5 in 2-d: c(Q, H) grows at least linearly in sqrt(n)."""
        for ratio in growth_ratios(rows):
            assert ratio >= 2.0

    def test_onion_is_flat(self, rows):
        """Theorem 1: the onion value is a constant 2L/3 + O(1)."""
        values = [r.onion for r in rows]
        assert max(values) - min(values) < 1.0
        bound = 2 * 11 / 3 + 4
        assert all(v <= bound for v in values)

    def test_gap_widens(self, rows):
        gaps = [r.gap for r in rows]
        assert gaps == sorted(gaps)
        assert gaps[-1] > 2 * gaps[0]


class TestScalingExperiment3D:
    @pytest.fixture(scope="class")
    def rows(self):
        return scaling_experiment([8, 16, 32], dim=3, margin=4)

    def test_hilbert_grows_at_least_4x(self, rows):
        """Lemma 5 in 3-d: growth exponent 2/3 means x4 per side doubling."""
        for ratio in growth_ratios(rows):
            assert ratio >= 4.0

    def test_onion_is_bounded(self, rows):
        # Theorem 4 large regime with L = 5: 3L²/5 + 13L/4 − 13/6.
        bound = 0.6 * 25 + 3.25 * 5 - 13 / 6
        assert all(r.onion <= bound for r in rows)


class TestValidation:
    def test_margin_too_large_rejected(self):
        with pytest.raises(ValueError):
            scaling_experiment([8], dim=2, margin=8)

    def test_row_gap_property(self):
        row = ScalingRow(side=8, length=4, onion=2.0, hilbert=10.0)
        assert row.gap == pytest.approx(5.0)
