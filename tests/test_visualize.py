"""ASCII visualization."""

import pytest

from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.visualize import render_clusters, render_keys, render_path


class TestRenderKeys:
    def test_onion_4x4_matches_figure3(self):
        text = render_keys(make_curve("onion", 4, 2))
        rows = [line.split() for line in text.splitlines()]
        # Top row (y = 3) of Figure 3: 9 8 7 6.
        assert rows[0] == ["9", "8", "7", "6"]
        # Bottom row (y = 0): 0 1 2 3.
        assert rows[3] == ["0", "1", "2", "3"]

    def test_every_key_appears_once(self):
        text = render_keys(make_curve("hilbert", 4, 2))
        values = sorted(int(v) for v in text.split())
        assert values == list(range(16))

    def test_3d_rejected(self):
        with pytest.raises(InvalidQueryError):
            render_keys(make_curve("onion", 4, 3))


class TestRenderPath:
    def test_dimensions(self):
        text = render_path(make_curve("hilbert", 8, 2))
        lines = text.splitlines()
        assert len(lines) == 8
        assert all(len(line.split()) == 8 for line in lines)

    def test_continuous_curve_has_no_jumps(self):
        text = render_path(make_curve("onion", 8, 2))
        assert "*" not in text
        assert text.count("o") == 1

    def test_z_curve_shows_jumps(self):
        text = render_path(make_curve("zorder", 8, 2))
        assert "*" in text


class TestRenderClusters:
    def test_figure2_onion_single_cluster(self):
        curve = make_curve("onion", 8, 2)
        rect = Rect.from_origin((0, 1), (7, 7))
        text = render_clusters(curve, rect)
        assert text.startswith("1 cluster(s)")
        body = text.split("\n", 1)[1]
        assert body.count("A") == 49
        assert "B" not in body

    def test_figure2_hilbert_five_clusters(self):
        curve = make_curve("hilbert", 8, 2)
        rect = Rect.from_origin((0, 1), (7, 7))
        text = render_clusters(curve, rect)
        assert text.startswith("5 cluster(s)")
        body = text.split("\n", 1)[1]
        for label in "ABCDE":
            assert label in body
        assert "F" not in body

    def test_cells_outside_query_are_dots(self):
        curve = make_curve("onion", 8, 2)
        text = render_clusters(curve, Rect((2, 2), (4, 4)))
        body = text.split("\n", 1)[1]
        assert body.count(".") == 64 - 9
