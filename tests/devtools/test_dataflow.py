"""Unit tests for the CFG builder and the forward walker — the engine
under every path-sensitive lint rule."""

import ast

import pytest

from repro.devtools import dataflow
from repro.devtools.dataflow import (
    Analysis,
    build_cfg,
    class_summaries,
    module_units,
    run_forward,
    scan_walk,
)


def _func(source):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            return node
    raise AssertionError("no function in snippet")


def _kinds(cfg):
    return [node.kind for node in cfg.nodes]


class _AssignedOnAllPaths(Analysis):
    """Must-analysis: names assigned on every path to a point."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a & b

    def transfer(self, state, node):
        out = set(state)
        for sub in scan_walk(node):
            if isinstance(sub, ast.Assign):
                out |= {
                    t.id for t in sub.targets if isinstance(t, ast.Name)
                }
        # The exception edge may fire before the assignment landed.
        return frozenset(out), state


class TestStructure:
    def test_linear_function(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = 2\n"))
        stmts = [n for n in cfg.nodes if n.kind == "stmt"]
        assert [n.line for n in stmts] == [2, 3]
        assert stmts[1].succ == [cfg.exit]
        # Every statement can raise: exc edges lead to raise-exit.
        assert all(n.exc == [cfg.raise_exit] for n in stmts)

    def test_if_both_branches_reach_exit(self):
        cfg = build_cfg(
            _func("def f(x):\n    if x:\n        a = 1\n    else:\n        a = 2\n")
        )
        (head,) = [n for n in cfg.nodes if n.kind == "test"]
        assert len(head.succ) == 2
        assert all(s.succ == [cfg.exit] for s in head.succ)

    def test_return_routes_to_exit_raise_to_raise_exit(self):
        cfg = build_cfg(
            _func("def f(x):\n    if x:\n        return 1\n    raise ValueError\n")
        )
        ret = [n for n in cfg.nodes if n.scan and isinstance(n.scan[0], ast.Return)]
        assert ret[0].succ == [cfg.exit]
        rse = [n for n in cfg.nodes if n.scan and isinstance(n.scan[0], ast.Raise)]
        assert rse[0].succ == []
        assert rse[0].exc == [cfg.raise_exit]

    def test_loop_break_and_continue(self):
        cfg = build_cfg(
            _func(
                "def f(xs):\n"
                "    for x in xs:\n"
                "        if x:\n"
                "            break\n"
                "        continue\n"
                "    done = 1\n"
            )
        )
        (head,) = [n for n in cfg.nodes if n.kind == "for"]
        # The break lands on a join that flows past the loop; the
        # continue's join flows back to the head.
        joins = [n for n in cfg.nodes if n.kind == "join"]
        assert any(head in j.succ for j in joins)  # continue join
        (after,) = [n for n in cfg.nodes if n.kind == "stmt" and n.line == 6]
        assert any(after in j.succ for j in joins)  # break join

    def test_with_exit_on_normal_and_abrupt_paths(self):
        cfg = build_cfg(
            _func(
                "def f(r):\n"
                "    with r:\n"
                "        if r:\n"
                "            return 1\n"
                "        step()\n"
                "    tail = 2\n"
            )
        )
        exits = [n for n in cfg.nodes if n.kind == "with-exit"]
        assert len(exits) == 2  # one normal, one shared abrupt copy
        # The return passes through a with-exit before reaching exit.
        assert any(cfg.exit in e.succ for e in exits)
        # The in-block statement's exception edge also goes through it.
        (step,) = [n for n in cfg.nodes if n.kind == "stmt" and n.line == 5]
        assert step.exc[0].kind == "with-exit"

    def test_finally_duplicated_for_abrupt_exit(self):
        cfg = build_cfg(
            _func(
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    finally:\n"
                "        cleanup()\n"
            )
        )
        cleanups = [
            n
            for n in cfg.nodes
            if n.scan
            and isinstance(n.scan[0], ast.Expr)
            and n.line == 5
        ]
        assert len(cleanups) == 2  # normal copy + shared abrupt copy
        assert any(cfg.exit in c.succ for c in cleanups)
        assert any(cfg.raise_exit in c.succ for c in cleanups)

    def test_except_handler_catches_and_non_catch_all_escapes(self):
        cfg = build_cfg(
            _func(
                "def f():\n"
                "    try:\n"
                "        work()\n"
                "    except ValueError:\n"
                "        pass\n"
            )
        )
        (dispatch,) = [n for n in cfg.nodes if n.kind == "dispatch"]
        kinds = {s.kind for s in dispatch.succ}
        # A ValueError handler is not catch-all: the dispatch also
        # routes onward to raise-exit.
        assert "except" in kinds
        assert cfg.raise_exit in dispatch.succ

    def test_nested_def_is_not_scanned_inline(self):
        cfg = build_cfg(
            _func("def f():\n    def g():\n        inner()\n    g()\n")
        )
        scanned = [
            sub
            for node in cfg.nodes
            for sub in scan_walk(node)
            if isinstance(sub, ast.Call)
        ]
        names = {c.func.id for c in scanned if isinstance(c.func, ast.Name)}
        assert names == {"g"}  # inner() belongs to g's own unit


class TestFixpoint:
    def test_must_join_drops_one_sided_facts(self):
        cfg = build_cfg(
            _func(
                "def f(x):\n"
                "    a = 1\n"
                "    if x:\n"
                "        b = 2\n"
                "    c = 3\n"
            )
        )
        states = run_forward(cfg, _AssignedOnAllPaths())
        assert states[cfg.exit.index] == {"a", "c"}

    def test_exception_edge_sees_pre_state(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n"))
        states = run_forward(cfg, _AssignedOnAllPaths())
        assert states[cfg.raise_exit.index] == frozenset()
        assert states[cfg.exit.index] == {"a"}

    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(
            _func("def f(xs):\n    for x in xs:\n        a = 1\n    b = 2\n")
        )
        states = run_forward(cfg, _AssignedOnAllPaths())
        # The loop may run zero times: only b is assigned on all paths.
        assert states[cfg.exit.index] == {"b"}

    def test_unreachable_nodes_have_no_state(self):
        cfg = build_cfg(_func("def f():\n    return 1\n    dead = 2\n"))
        states = run_forward(cfg, _AssignedOnAllPaths())
        (dead,) = [n for n in cfg.nodes if n.line == 3]
        assert dead.index not in states


class TestUnits:
    def test_qualnames_and_roots(self):
        tree = ast.parse(
            "def top():\n"
            "    def inner():\n"
            "        pass\n"
            "class C:\n"
            "    def m(self):\n"
            "        def worker():\n"
            "            pass\n"
        )
        units = {u.qualname: u for u in module_units(tree)}
        assert set(units) == {"top", "top.inner", "C.m", "C.m.worker"}
        assert units["top.inner"].root.name == "top"
        assert units["C.m.worker"].method_name == "m"
        assert units["C.m"].cls.name == "C"
        assert units["top"].cls is None

    def test_class_summaries_acquires_and_calls(self):
        tree = ast.parse(
            "class C:\n"
            "    def helper(self):\n"
            "        lock = self._mutex\n"
            "        with lock:\n"
            "            self._step()\n"
        )
        (cls,) = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        summaries = class_summaries(
            cls,
            is_lock=lambda attr: attr.endswith("_mutex"),
            resolve=lambda attr: attr,
            acquire_kind=lambda expr: None,
        )
        assert summaries["helper"].acquires == {"_mutex"}
        assert "_step" in summaries["helper"].calls
