"""Unit tests for the mypy strict ratchet's pure core.

mypy itself is optional and may be absent on a dev box, so these tests
exercise the parts that never shell out: error bucketing, the
shrink-only ``evaluate`` contract, and budget-file round-trips.
"""

from pathlib import Path

import pytest

from repro.devtools import ratchet
from repro.devtools.ratchet import (
    TRACKED_PACKAGES,
    count_errors,
    evaluate,
    load_budgets,
    save_budgets,
)

SRC_ROOT = Path("src/repro")


class TestEvaluate:
    def test_under_budget_is_ok_and_banks_the_improvement(self):
        ok, messages, shrunk = evaluate({"repro.api": 3}, {"repro.api": 10})
        assert ok
        assert shrunk == {"repro.api": 3}
        assert any("bank the improvement" in m for m in messages)

    def test_at_budget_is_ok_and_keeps_the_budget(self):
        ok, _, shrunk = evaluate({"repro.api": 10}, {"repro.api": 10})
        assert ok
        assert shrunk == {"repro.api": 10}

    def test_over_budget_fails_and_never_raises_the_budget(self):
        ok, messages, shrunk = evaluate({"repro.api": 12}, {"repro.api": 10})
        assert not ok
        # The shrunk map still holds the OLD budget — a regression is
        # never banked.
        assert shrunk == {"repro.api": 10}
        assert any("exceeds budget" in m for m in messages)

    def test_package_without_budget_fails(self):
        ok, messages, _ = evaluate({"repro.new": 1}, {})
        assert not ok
        assert any("no budget recorded" in m for m in messages)

    def test_unchecked_package_keeps_its_budget(self):
        ok, _, shrunk = evaluate({}, {"repro.api": 10})
        assert ok
        assert shrunk == {"repro.api": 10}

    def test_mixed_packages(self):
        counts = {"repro.api": 1, "repro.engine": 99}
        budgets = {"repro.api": 5, "repro.engine": 50}
        ok, _, shrunk = evaluate(counts, budgets)
        assert not ok
        assert shrunk == {"repro.api": 1, "repro.engine": 50}


class TestCountErrors:
    def test_buckets_by_package_dir(self):
        output = "\n".join(
            [
                "src/repro/api/store.py:10: error: boom  [misc]",
                "src/repro/api/cursor.py:20: error: boom  [misc]",
                "src/repro/engine/cache.py:5: error: boom  [misc]",
                "src/repro/curves/onion.py:1: error: untracked  [misc]",
                "src/repro/api/store.py:11: note: not an error",
            ]
        )
        counts = count_errors(output, SRC_ROOT)
        assert counts["repro.api"] == 2
        assert counts["repro.engine"] == 1
        assert counts["repro.index"] == 0
        assert counts["repro.adaptive"] == 0

    def test_every_tracked_package_has_a_count(self):
        counts = count_errors("", SRC_ROOT)
        assert set(counts) == set(TRACKED_PACKAGES)
        assert all(count == 0 for count in counts.values())


class TestBudgetFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "budgets.json"
        save_budgets(path, {"repro.api": 7, "repro.engine": 3})
        assert load_budgets(path) == {"repro.api": 7, "repro.engine": 3}

    def test_save_preserves_other_keys(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text('{"_comment": ["keep me"], "budgets": {"repro.api": 9}}')
        save_budgets(path, {"repro.api": 4})
        text = path.read_text()
        assert "keep me" in text
        assert load_budgets(path) == {"repro.api": 4}

    def test_shipped_budget_file_loads_and_covers_tracked_packages(self):
        budgets = load_budgets(ratchet.default_budget_path())
        assert set(budgets) == set(TRACKED_PACKAGES)
        assert all(isinstance(b, int) and b >= 0 for b in budgets.values())


class TestMainWithoutMypy:
    def test_missing_mypy_skips_by_default(self, monkeypatch, capsys):
        monkeypatch.setattr(ratchet, "mypy_available", lambda: False)
        assert ratchet.main([]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_missing_mypy_fails_under_require(self, monkeypatch, capsys):
        monkeypatch.setattr(ratchet, "mypy_available", lambda: False)
        assert ratchet.main(["--require"]) == 2

    def test_update_refused_while_over_budget(self, monkeypatch, tmp_path):
        budget_path = tmp_path / "budgets.json"
        save_budgets(budget_path, {name: 0 for name in TRACKED_PACKAGES})
        monkeypatch.setattr(ratchet, "mypy_available", lambda: True)
        monkeypatch.setattr(
            ratchet,
            "run_mypy",
            lambda src: (1, "src/repro/api/store.py:1: error: x  [misc]\n"),
        )
        code = ratchet.main(["--budgets", str(budget_path), "--update"])
        assert code == 1
        # Budgets were NOT rewritten.
        assert load_budgets(budget_path)["repro.api"] == 0

    def test_update_banks_an_improvement(self, monkeypatch, tmp_path):
        budget_path = tmp_path / "budgets.json"
        save_budgets(budget_path, {name: 5 for name in TRACKED_PACKAGES})
        monkeypatch.setattr(ratchet, "mypy_available", lambda: True)
        monkeypatch.setattr(
            ratchet,
            "run_mypy",
            lambda src: (1, "src/repro/api/store.py:1: error: x  [misc]\n"),
        )
        code = ratchet.main(["--budgets", str(budget_path), "--update"])
        assert code == 0
        budgets = load_budgets(budget_path)
        assert budgets["repro.api"] == 1
        assert budgets["repro.engine"] == 0
