"""Unit tests for the resource-lifecycle rule beyond the seeded
fixture: with-blocks, ownership escapes, the one-level helper summary,
stored-on-self resources, and the span row's strict historical
contract."""

import ast

from repro.devtools import dataflow
from repro.devtools.lifecycle import check_resource_lifecycle

REL = "mod.py"


def _check(source):
    tree = ast.parse(source)
    return check_resource_lifecycle(tree, dataflow.module_units(tree), REL)


def _keys(findings):
    return {f.key for f in findings}


class TestLocalTracking:
    def test_with_block_releases_on_every_path(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        with self.cursor(q) as cur:\n"
            "            if q:\n"
            "                return cur.fetchone()\n"
            "            step()\n"
        )
        assert findings == []

    def test_return_escape_transfers_ownership(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        cur = self.cursor(q)\n"
            "        return cur\n"
        )
        assert findings == []

    def test_call_argument_escape_transfers_ownership(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        cur = self.cursor(q)\n"
            "        self.adopt(cur)\n"
        )
        assert findings == []

    def test_leak_on_all_paths_flagged(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        cur = self.cursor(q)\n"
            "        cur.fetchone()\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::cursor:cur"}
        (finding,) = findings
        assert "a path reaches function exit" in finding.message

    def test_exception_only_leak_says_so(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        cur = self.cursor(q)\n"
            "        self.work()\n"
            "        cur.close()\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::cursor:cur"}
        (finding,) = findings
        assert "exception path" in finding.message

    def test_try_finally_close_is_silent(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        cur = self.cursor(q)\n"
            "        try:\n"
            "            self.work()\n"
            "        finally:\n"
            "            cur.close()\n"
        )
        assert findings == []

    def test_discarded_acquire_flagged(self):
        findings = _check(
            "class C:\n"
            "    def m(self, q):\n"
            "        self.cursor(q)\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::cursor:discard"}

    def test_provider_method_exempt(self):
        findings = _check(
            "class C:\n"
            "    def cursor(self, q):\n"
            "        return self._backend.cursor(q)\n"
        )
        assert findings == []


class TestInterprocedural:
    def test_helper_returning_acquire_counts_as_acquisition(self):
        findings = _check(
            "class C:\n"
            "    def _open(self, q):\n"
            "        return self.cursor(q)\n"
            "    def use(self, q):\n"
            "        cur = self._open(q)\n"
            "        cur.fetchone()\n"
        )
        assert _keys(findings) == {f"{REL}::C.use::cursor:cur"}

    def test_helper_acquisition_released_is_silent(self):
        findings = _check(
            "class C:\n"
            "    def _open(self, q):\n"
            "        return self.cursor(q)\n"
            "    def use(self, q):\n"
            "        cur = self._open(q)\n"
            "        try:\n"
            "            self.work()\n"
            "        finally:\n"
            "            cur.close()\n"
        )
        assert findings == []


class TestStoredResources:
    def test_stored_handle_without_releasing_method(self):
        findings = _check(
            "class C:\n"
            "    def __init__(self, ops, path):\n"
            "        self._h = ops.open_append(path)\n"
        )
        assert _keys(findings) == {f"{REL}::C._h::wal-handle"}

    def test_stored_handle_with_close_method_is_silent(self):
        findings = _check(
            "class C:\n"
            "    def __init__(self, ops, path):\n"
            "        self._h = ops.open_append(path)\n"
            "    def close(self):\n"
            "        self._h.close()\n"
        )
        assert findings == []

    def test_release_through_local_alias_counts(self):
        findings = _check(
            "class C:\n"
            "    def __init__(self, ops, path):\n"
            "        self._h = ops.open_append(path)\n"
            "    def close(self):\n"
            "        handle = self._h\n"
            "        handle.close()\n"
        )
        assert findings == []


class TestSpanRow:
    def test_span_escape_is_still_a_leak(self):
        """The span row keeps the strict historical contract: a local
        span must be ended locally, handing it away is not a release."""
        findings = _check(
            "def m():\n"
            "    sp = open_span('x')\n"
            "    return sp\n"
        )
        assert _keys(findings) == {f"{REL}::m::sp"}
        (finding,) = findings
        assert finding.rule == "span-balance"

    def test_span_ended_in_finally_is_silent(self):
        findings = _check(
            "def m():\n"
            "    sp = open_span('x')\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        sp.end()\n"
        )
        assert findings == []
