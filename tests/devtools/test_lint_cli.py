"""CLI-level tests: ``repro lint`` exit codes on the seeded fixtures.

These are the acceptance checks from the issue — the command exits
non-zero for each seeded bug class and zero for the clean tree — plus
the flag plumbing (``--rules``, ``--list-rules``, dispatch through
``python -m repro lint``).
"""

from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

SEEDED = [
    "bad_unguarded.py",
    "bad_lock_order.py",
    "bad_blocking.py",
    "bad_epoch.py",
    "bad_notify.py",
    "bad_mutable_default.py",
]


class TestExitCodes:
    @pytest.mark.parametrize("fixture", SEEDED)
    def test_each_seeded_fixture_fails(self, fixture, capsys):
        code = lint_main(["--src", str(FIXTURES / fixture), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "finding(s)" in out

    def test_curve_matrix_fixture_fails(self, capsys):
        base = FIXTURES / "bad_curve_matrix"
        code = lint_main(
            [
                "--src", str(base / "registry.py"),
                "--registry", str(base / "registry.py"),
                "--tests", str(base / "tests"),
                "--no-baseline",
            ]
        )
        assert code == 1
        assert "gamma" in capsys.readouterr().out

    def test_clean_fixture_passes(self, capsys):
        assert lint_main(["--src", str(FIXTURES / "clean_module.py")]) == 0

    def test_default_tree_passes_with_shipped_baseline(self, capsys):
        """The CI invocation (minus the ratchet): zero on the real tree."""
        assert lint_main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_verbose_lists_baselined_findings(self, capsys):
        assert lint_main(["-v"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        assert "peano" in out


class TestFlags:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out.split()
        assert "unguarded-access" in out
        assert "curve-matrix-gap" in out

    def test_rules_subset_filters(self, capsys):
        # epoch-bump alone sees nothing wrong with the mutable-default file.
        code = lint_main(
            [
                "--src", str(FIXTURES / "bad_mutable_default.py"),
                "--no-baseline",
                "--rules", "epoch-bump",
            ]
        )
        assert code == 0

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_main(["--rules", "bogus"])


class TestDispatch:
    def test_repro_cli_routes_lint_subcommand(self, capsys):
        code = repro_main(["lint", "--src", str(FIXTURES / "clean_module.py")])
        assert code == 0

    def test_repro_cli_routes_lint_failure(self, capsys):
        code = repro_main(
            ["lint", "--src", str(FIXTURES / "bad_epoch.py"), "--no-baseline"]
        )
        assert code == 1
