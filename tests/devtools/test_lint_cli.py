"""CLI-level tests: ``repro lint`` exit codes on the seeded fixtures.

These are the acceptance checks from the issue — the command exits
non-zero for each seeded bug class and zero for the clean tree — plus
the flag plumbing (``--rules``, ``--list-rules``, dispatch through
``python -m repro lint``).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

SEEDED = [
    "bad_unguarded.py",
    "bad_lock_order.py",
    "bad_blocking.py",
    "bad_epoch.py",
    "bad_notify.py",
    "bad_mutable_default.py",
    "bad_span.py",
    "bad_leaked_cursor.py",
    "bad_apply_before_wal.py",
    "bad_rename_before_fsync.py",
    "bad_swallow.py",
]


class TestExitCodes:
    @pytest.mark.parametrize("fixture", SEEDED)
    def test_each_seeded_fixture_fails(self, fixture, capsys):
        code = lint_main(["--src", str(FIXTURES / fixture), "--no-baseline"])
        assert code == 1
        out = capsys.readouterr().out
        assert "finding(s)" in out

    def test_curve_matrix_fixture_fails(self, capsys):
        base = FIXTURES / "bad_curve_matrix"
        code = lint_main(
            [
                "--src", str(base / "registry.py"),
                "--registry", str(base / "registry.py"),
                "--tests", str(base / "tests"),
                "--no-baseline",
            ]
        )
        assert code == 1
        assert "gamma" in capsys.readouterr().out

    def test_clean_fixture_passes(self, capsys):
        assert lint_main(["--src", str(FIXTURES / "clean_module.py")]) == 0

    def test_default_tree_passes_with_shipped_baseline(self, capsys):
        """The CI invocation (minus the ratchet): zero on the real tree."""
        assert lint_main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_verbose_lists_baselined_findings(self, capsys):
        assert lint_main(["-v"]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out
        assert "peano" in out


class TestFlags:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out.split()
        assert "unguarded-access" in out
        assert "curve-matrix-gap" in out

    def test_rules_subset_filters(self, capsys):
        # epoch-bump alone sees nothing wrong with the mutable-default file.
        code = lint_main(
            [
                "--src", str(FIXTURES / "bad_mutable_default.py"),
                "--no-baseline",
                "--rules", "epoch-bump",
            ]
        )
        assert code == 0

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_main(["--rules", "bogus"])

    def test_json_report_written(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = lint_main(
            [
                "--src", str(FIXTURES / "bad_swallow.py"),
                "--no-baseline",
                "--json", str(out_path),
            ]
        )
        assert code == 1
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is False
        (finding,) = payload["findings"]
        assert finding["rule"] == "exception-flow"
        assert finding["key"].endswith("::Sink.drain::BaseException#1")
        assert set(finding) == {"rule", "path", "line", "message", "key"}

    def test_json_to_stdout(self, capsys):
        code = lint_main(
            ["--src", str(FIXTURES / "clean_module.py"), "--json", "-"]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_github_annotations_emitted(self, capsys):
        code = lint_main(
            [
                "--src", str(FIXTURES / "bad_apply_before_wal.py"),
                "--no-baseline",
                "--github",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=durability-ordering" in out

    def test_github_annotations_silent_when_clean(self, capsys):
        code = lint_main(
            ["--src", str(FIXTURES / "clean_module.py"), "--github"]
        )
        assert code == 0
        assert "::error" not in capsys.readouterr().out


class TestDispatch:
    def test_repro_cli_routes_lint_subcommand(self, capsys):
        code = repro_main(["lint", "--src", str(FIXTURES / "clean_module.py")])
        assert code == 0

    def test_repro_cli_routes_lint_failure(self, capsys):
        code = repro_main(
            ["lint", "--src", str(FIXTURES / "bad_epoch.py"), "--no-baseline"]
        )
        assert code == 1
