"""Lock-discipline tests specific to the CFG port: multi-item ``with``
statements and locks acquired inside private helpers — the two
patterns the old per-function walker went blind on."""

import ast

from repro.devtools import dataflow
from repro.devtools.locklint import LockLint

PREAMBLE = "import threading\n\n\n"


def _lint(body):
    source = PREAMBLE + body
    tree = ast.parse(source)
    lint = LockLint()
    lint.add_module(tree, source, "mod.py", dataflow.module_units(tree))
    return lint.finalize()


def _keys(findings, rule):
    return {f.key for f in findings if f.rule == rule}


class TestMultiItemWith:
    def test_declared_order_in_one_statement_is_silent(self):
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mutex = threading.Lock()\n"
            "        self._io_lock = threading.Lock()\n"
            "    def both(self):\n"
            "        with self._mutex, self._io_lock:\n"
            "            return 1\n"
        )
        assert _keys(findings, "lock-order") == set()

    def test_inverted_order_in_one_statement_flagged(self):
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mutex = threading.Lock()\n"
            "        self._io_lock = threading.Lock()\n"
            "    def both(self):\n"
            "        with self._io_lock, self._mutex:\n"
            "            return 1\n"
        )
        assert "_io_lock->_mutex@declared" in _keys(findings, "lock-order")

    def test_multi_item_conflicts_with_nested_elsewhere(self):
        # a->b recorded from the single with statement, b->a from the
        # nested pair: an inversion across the two methods.
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._alpha_lock = threading.Lock()\n"
            "        self._beta_lock = threading.Lock()\n"
            "    def one(self):\n"
            "        with self._alpha_lock, self._beta_lock:\n"
            "            return 1\n"
            "    def two(self):\n"
            "        with self._beta_lock:\n"
            "            with self._alpha_lock:\n"
            "                return 2\n"
        )
        keys = _keys(findings, "lock-order")
        assert any("_alpha_lock<->_beta_lock" in k for k in keys)


class TestLockInHelper:
    def test_helper_acquisition_contributes_edge(self):
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mutex = threading.Lock()\n"
            "        self._io_lock = threading.Lock()\n"
            "    def _grab(self):\n"
            "        with self._mutex:\n"
            "            return 1\n"
            "    def outer(self):\n"
            "        with self._io_lock:\n"
            "            return self._grab()\n"
        )
        assert "_io_lock->_mutex@declared" in _keys(findings, "lock-order")

    def test_reentrant_helper_under_same_lock_is_silent(self):
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mutex = threading.Lock()\n"
            "    def _grab(self):\n"
            "        with self._mutex:\n"
            "            return 1\n"
            "    def outer(self):\n"
            "        with self._mutex:\n"
            "            return self._grab()\n"
        )
        assert _keys(findings, "lock-order") == set()

    def test_helper_without_caller_lock_is_silent(self):
        findings = _lint(
            "class C:\n"
            "    def __init__(self):\n"
            "        self._mutex = threading.Lock()\n"
            "    def _grab(self):\n"
            "        with self._mutex:\n"
            "            return 1\n"
            "    def outer(self):\n"
            "        return self._grab()\n"
        )
        assert _keys(findings, "lock-order") == set()
