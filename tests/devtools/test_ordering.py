"""Unit tests for the durability-ordering and exception-flow rules
beyond the seeded fixtures: dominance on branches, the rename chain's
dir-fsync requirement, and the always-raises handler analysis."""

import ast

from repro.devtools import dataflow
from repro.devtools.ordering import (
    check_durability_ordering,
    check_exception_flow,
)

REL = "mod.py"


def _ordering(source):
    tree = ast.parse(source)
    return check_durability_ordering(dataflow.module_units(tree), REL)


def _exc_flow(source):
    return check_exception_flow(ast.parse(source), REL)


def _keys(findings):
    return {f.key for f in findings}


class TestLogThenApply:
    def test_apply_reachable_logfree_on_one_branch(self):
        findings = _ordering(
            "class C:\n"
            "    def m(self, k):\n"
            "        if k:\n"
            "            self._log_durable(k)\n"
            "        self._append_record(k)\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::_append_record"}

    def test_apply_dominated_by_log_is_silent(self):
        findings = _ordering(
            "class C:\n"
            "    def m(self, k):\n"
            "        self._log_durable(k)\n"
            "        if k:\n"
            "            self._append_record(k)\n"
        )
        assert findings == []

    def test_self_attr_store_before_log_flagged(self):
        findings = _ordering(
            "class C:\n"
            "    def m(self, k):\n"
            "        self._count = 1\n"
            "        self._log_durable(k)\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::self._count"}

    def test_function_without_log_call_unchecked(self):
        # The rule only audits functions that append to the WAL at all;
        # read-side mutators are out of scope by design.
        findings = _ordering(
            "class C:\n"
            "    def m(self, k):\n"
            "        self._append_record(k)\n"
        )
        assert findings == []

    def test_log_inside_loop_does_not_dominate_first_iteration(self):
        findings = _ordering(
            "class C:\n"
            "    def m(self, keys):\n"
            "        for k in keys:\n"
            "            self._append_record(k)\n"
            "            self._log_durable(k)\n"
        )
        assert _keys(findings) == {f"{REL}::C.m::_append_record"}


class TestRenameChain:
    def test_full_chain_is_silent(self):
        findings = _ordering(
            "class C:\n"
            "    def publish(self, ops, root, data):\n"
            "        tmp = root / 'm.tmp'\n"
            "        ops.write_file(tmp, data)\n"
            "        ops.replace(tmp, root / 'm')\n"
            "        ops.fsync_dir(root)\n"
        )
        assert findings == []

    def test_missing_dir_fsync_flagged(self):
        findings = _ordering(
            "class C:\n"
            "    def publish(self, ops, root, data):\n"
            "        tmp = root / 'm.tmp'\n"
            "        ops.write_file(tmp, data)\n"
            "        ops.replace(tmp, root / 'm')\n"
        )
        assert _keys(findings) == {f"{REL}::C.publish::dirsync:tmp"}

    def test_chain_implementation_itself_exempt(self):
        # FileOps.replace and friends *are* the seam the rule checks
        # callers against.
        findings = _ordering(
            "class FileOps:\n"
            "    def replace(self, src, dst):\n"
            "        self._os.replace(src, dst)\n"
        )
        assert findings == []

    def test_str_replace_not_confused_with_rename(self):
        findings = _ordering(
            "class C:\n"
            "    def slug(self, name):\n"
            "        return name.replace(' ', '-')\n"
        )
        assert findings == []


class TestExceptionFlow:
    def test_bare_except_flagged(self):
        findings = _exc_flow(
            "def m():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        )
        assert _keys(findings) == {f"{REL}::m::bare#1"}

    def test_tuple_with_base_exception_labelled_base_exception(self):
        findings = _exc_flow(
            "def m():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, BaseException):\n"
            "        return None\n"
        )
        assert _keys(findings) == {f"{REL}::m::BaseException#1"}

    def test_handler_that_always_raises_is_silent(self):
        findings = _exc_flow(
            "def m():\n"
            "    try:\n"
            "        work()\n"
            "    except BaseException:\n"
            "        cleanup()\n"
            "        raise\n"
        )
        assert findings == []

    def test_branchy_handler_raising_on_both_sides_is_silent(self):
        findings = _exc_flow(
            "def m(strict):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as e:\n"
            "        if strict:\n"
            "            raise\n"
            "        else:\n"
            "            raise RuntimeError from e\n"
        )
        assert findings == []

    def test_narrow_handler_not_flagged(self):
        findings = _exc_flow(
            "def m():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert findings == []

    def test_module_level_handler_and_stable_ordinals(self):
        findings = _exc_flow(
            "try:\n"
            "    import fast_json\n"
            "except Exception:\n"
            "    fast_json = None\n"
            "try:\n"
            "    import fast_lz\n"
            "except Exception:\n"
            "    fast_lz = None\n"
        )
        assert _keys(findings) == {
            f"{REL}::<module>::Exception#1",
            f"{REL}::<module>::Exception#2",
        }
