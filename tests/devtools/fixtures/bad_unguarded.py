"""Fixture: guarded-field access without the lock (unguarded-access)."""

import threading


class LeakyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _lock

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1

    def peek(self):
        # BUG: reads both guarded fields without the lock.
        return self._count, list(self._items)

    def reset(self):
        with self._lock:
            self._items.clear()
        # BUG: the write escapes the with block above.
        self._count = 0
