"""Seeded-violation fixtures for the ``repro.devtools`` self-tests.

Each ``bad_*`` module plants exactly the bug class one analyzer rule
exists to catch; ``clean_module`` plants none.  The self-tests lint
each file in isolation and assert the expected findings — the analyzer
never imports these modules (everything is AST over source), so the
planted bugs are inert.
"""
