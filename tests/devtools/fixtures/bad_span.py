"""Fixture: floating spans that leak (span-balance).

``LeakyStream`` stores an ``open_span`` on ``self`` in ``__init__`` but
no method ever ends it — every traced stream through this class leaves
a live span reporting a still-growing duration.  ``leaky_local`` ends
its span on the happy path only, so a raising record leaks it; the
disciplined form puts the ``end`` in a ``finally``.  ``discarded_span``
drops the handle entirely — that span can never be ended by anyone.
"""


def open_span(name, kind="span"):
    """Local stand-in for ``repro.obs.trace.open_span`` (fixtures are
    parsed, never imported — the rule matches the call by name)."""
    raise NotImplementedError


class LeakyStream:
    def __init__(self, pages):
        self._span = open_span("stream", kind="io")  # BUG: never ended
        self._pages = list(pages)

    def run(self):
        for page in self._pages:
            yield page

    def close(self):
        self._pages = []  # forgets self._span.end()


def leaky_local(records):
    sp = open_span("scan")  # BUG: end() below is happy-path only
    total = 0
    for record in records:
        total += record  # a raising element leaks the span
    sp.end()
    return total


def disciplined_local(records):
    sp = open_span("scan")
    try:
        return sum(records)
    finally:
        sp.end()  # balanced on every path — the rule stays silent


def discarded_span():
    open_span("orphan")  # BUG: result dropped; nothing can end it
    return 1
