"""Seeded bug for ``exception-flow``: a ``BaseException`` handler that
can complete without re-raising — it would eat the crash-injection
suite's ``InjectedCrash`` and silently void every durability proof.

``drain_carefully`` cleans up and re-raises on every path and must
stay silent.
"""


class Sink:
    def _flush(self):
        raise NotImplementedError

    def _abort(self):
        raise NotImplementedError

    def drain(self):
        try:
            self._flush()
        except BaseException:
            pass

    def drain_carefully(self):
        try:
            self._flush()
        except BaseException:
            self._abort()
            raise
