"""Seeded bug for ``durability-ordering`` (log-then-apply): state is
mutated *before* the WAL append that would make the mutation
replayable — a crash between the two loses the write silently.

``good_insert`` shows the disciplined order and must stay silent.
"""


class Ledger:
    def __init__(self):
        self._rows = {}

    def _log_durable(self, op, key, value):
        raise NotImplementedError

    def _append_record(self, key, value):
        self._rows[key] = value

    def bad_insert(self, key, value):
        self._append_record(key, value)
        self._log_durable("insert", key, value)

    def good_insert(self, key, value):
        self._log_durable("insert", key, value)
        self._append_record(key, value)
