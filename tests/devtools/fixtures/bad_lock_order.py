"""Fixture: lock-order inversion (lock-order).

One method takes ``_mutex`` then ``_io_lock`` (the declared order);
another takes them in reverse — a deadlock schedule exists, and the
reverse edge also contradicts the declared global order.
"""

import threading


class Inverted:
    def __init__(self):
        self._mutex = threading.RLock()
        self._io_lock = threading.Lock()

    def forward(self):
        with self._mutex:
            with self._io_lock:
                return "ok"

    def backward(self):
        # BUG: acquires _mutex while holding _io_lock.
        with self._io_lock:
            with self._mutex:
                return "deadlock bait"
