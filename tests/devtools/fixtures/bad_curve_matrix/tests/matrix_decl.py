"""Fixture test tree: the matrices cover alpha and beta, never gamma."""

CURVE_NAMES = ["alpha", "beta"]
ALL_CURVE_SPECS = [("alpha", 2), ("beta", 3)]
