"""Fixture registry: three curves, one of which no matrix covers."""

_REGISTRY = {
    "alpha": None,
    "beta": None,
    "gamma": None,  # BUG: appears in no matrix below tests/
}
