"""Seeded bug for ``resource-lifecycle``: a cursor acquired and never
closed — the happy path returns a row and leaks the handle.

``RowReader.cursor`` is the provider (exempt by name); ``first_row``
is the one consumer that leaks.  ``sum_rows`` shows the disciplined
try/finally shape and must stay silent.
"""


class RowReader:
    def cursor(self, query):
        raise NotImplementedError

    def first_row(self, query):
        cur = self.cursor(query)
        first = cur.fetchone()
        return first

    def sum_rows(self, query):
        total = 0
        cur = self.cursor(query)
        try:
            for row in cur:
                total += row[0]
        finally:
            cur.close()
        return total
