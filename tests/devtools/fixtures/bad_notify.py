"""Fixture: recorder notified twice or never (notify-once).

``DoubleNotify`` calls ``record_executed`` from both ``close()`` and
the generator's ``finally`` with no idempotence guard — draining then
closing notifies twice.  ``MissingNotify`` yields with no finally at
all — a raising consumer or abandoned stream never reaches the
recorder, and ``close()`` does not notify either.
"""


class DoubleNotify:
    def __init__(self, recorder):
        self._recorder = recorder
        self._pages = [1, 2, 3]

    def stream(self):
        try:
            for page in self._pages:
                yield page
        finally:
            # BUG: no if-recorded guard — close() after a drain repeats this.
            self._recorder.record_executed((1, 1), seeks=1, pages=len(self._pages))

    def close(self):
        self._recorder.record_executed((1, 1), seeks=1, pages=len(self._pages))


class MissingNotify:
    def __init__(self, recorder):
        self._recorder = recorder
        self._pages = [1, 2, 3]
        self._done = False

    def stream(self):
        # BUG: no try/finally — an abandoned stream never notifies.
        for page in self._pages:
            yield page
        self._finalize()

    def close(self):
        # BUG: closing without draining never notifies either.
        self._done = True

    def _finalize(self):
        if self._done:
            return
        self._done = True
        self._recorder.record_executed((1, 1), seeks=1, pages=len(self._pages))
