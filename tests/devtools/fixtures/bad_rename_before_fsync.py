"""Seeded bug for ``durability-ordering`` (rename chain): an
``os.replace``-style commit rename of a path that was never written
through the fsyncing ``write_file`` seam — a crash can publish an
unsynced (possibly empty) file under the final name.

``publish_disciplined`` runs the full temp-write -> fsync -> replace ->
dir-fsync chain and must stay silent.
"""


class Publisher:
    def publish(self, ops, root, payload):
        tmp = root / "manifest.tmp"
        ops.replace(tmp, root / "manifest")
        ops.fsync_dir(root)

    def publish_disciplined(self, ops, root, payload):
        tmp = root / "manifest.tmp"
        ops.write_file(tmp, payload)
        ops.replace(tmp, root / "manifest")
        ops.fsync_dir(root)
