"""Fixture: mutable default arguments (mutable-default)."""


def accumulate(value, acc=[]):
    # BUG: one list shared by every call.
    acc.append(value)
    return acc


def tally(key, counts={}):
    # BUG: one dict shared by every call.
    counts[key] = counts.get(key, 0) + 1
    return counts


class Collector:
    def collect(self, item, seen=set()):
        # BUG: one set shared by every call AND every instance.
        seen.add(item)
        return seen

    def fine(self, items=(), label=None, fallback=0):
        # OK: immutable defaults.
        return list(items), label, fallback


def keyword_only(*, buffer=bytearray()):
    # BUG: kw-only defaults are just as shared.
    return buffer
