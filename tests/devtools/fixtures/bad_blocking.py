"""Fixture: blocking calls while holding a lock (blocking-under-lock)."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor


class SleepyWorker:
    def __init__(self):
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=2)

    def slow_poll(self):
        with self._lock:
            # BUG: parks the thread while holding the lock.
            time.sleep(0.1)

    def wait_for_worker(self, task):
        with self._lock:
            future = self._pool.submit(task)
            # BUG: a worker needing _lock to finish deadlocks us here.
            return future.result()

    def stop(self):
        with self._lock:
            # BUG: shutdown without wait=False blocks until workers drain.
            self._pool.shutdown()

    def stop_fast(self):
        with self._lock:
            # OK: explicitly non-blocking shutdown is exempt.
            self._pool.shutdown(wait=False)
