"""Fixture: layout installed without an epoch bump (epoch-bump)."""


class StaleStore:
    def __init__(self):
        self._layout = None
        self._epoch = 0

    def good_swap(self, layout):
        self._layout = layout
        self._epoch += 1

    def delegated_swap(self, layout):
        self._install_layout(layout)

    def _install_layout(self, layout):
        self._layout = layout
        self._epoch += 1

    def bad_swap(self, layout):
        # BUG: the plan cache keeps serving plans keyed to the old epoch.
        self._layout = layout

    def clearing_is_fine(self):
        # Setting the layout to None (invalidation) needs no bump.
        self._layout = None
