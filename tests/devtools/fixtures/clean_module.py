"""Fixture: a thread-safe module every rule should pass silently.

Exercises the same shapes the bad fixtures break: guarded fields (all
accesses locked), the declared lock order, a guarded notify-once
stream, epoch-bumping layout swaps, and immutable defaults.
"""

import threading


class DisciplinedStore:
    def __init__(self):
        self._mutex = threading.RLock()
        self._io_lock = threading.Lock()
        self._items = []  # guarded-by: _mutex
        self._layout = None  # guarded-by: _mutex
        self._epoch = 0  # guarded-by: _mutex

    def add(self, item):
        with self._mutex:
            self._items.append(item)

    def snapshot(self):
        with self._mutex:
            return list(self._items), self._epoch

    def swap(self, layout):
        with self._mutex:
            self._layout = layout
            self._epoch += 1
            with self._io_lock:
                pass  # clear caches under the io lock — the legal edge


class DisciplinedStream:
    def __init__(self, recorder, pages=()):
        self._recorder = recorder
        self._pages = tuple(pages)
        self._recorded = False

    def stream(self):
        try:
            for page in self._pages:
                yield page
        finally:
            self._finalize()

    def close(self):
        self._finalize()

    def _finalize(self):
        if self._recorded:
            return
        self._recorded = True
        self._recorder.record_executed((1, 1), seeks=0, pages=len(self._pages))
