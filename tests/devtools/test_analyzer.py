"""Self-tests: every static rule catches its seeded fixture and stays
silent on the clean one — and on the real production tree.

The fixtures in ``tests/devtools/fixtures`` each plant one bug class;
linting them file-by-file proves each rule fires (with stable finding
keys), and linting ``clean_module.py`` (plus the shipped ``src/repro``
tree) proves the rules do not cry wolf.
"""

from pathlib import Path

import pytest

from repro.devtools.analyzer import ALL_RULES, lint_tree
from repro.devtools.findings import Finding, LintReport, load_baseline

FIXTURES = Path(__file__).parent / "fixtures"


def _lint(name, **kwargs):
    return lint_tree(src=FIXTURES / name, use_baseline=False, **kwargs)


def _rules(report):
    return {finding.rule for finding in report.findings}


# ----------------------------------------------------------------------
# Each rule catches its fixture
# ----------------------------------------------------------------------
class TestSeededFixtures:
    def test_unguarded_access(self):
        report = _lint("bad_unguarded.py")
        findings = [f for f in report.findings if f.rule == "unguarded-access"]
        assert len(findings) == 3
        methods = {f.key.rsplit("::", 2)[-2] for f in findings}
        assert methods == {"LeakyCounter.peek", "LeakyCounter.reset"}
        # The disciplined methods are silent.
        assert not any("add" in f.key for f in findings)

    def test_lock_order_inversion(self):
        report = _lint("bad_lock_order.py")
        findings = [f for f in report.findings if f.rule == "lock-order"]
        assert findings, "inversion went undetected"
        # Both verdicts fire: the cycle and the declared-order breach.
        assert any("<->" in f.key for f in findings)
        assert any(f.key.endswith("@declared") for f in findings)

    def test_blocking_under_lock(self):
        report = _lint("bad_blocking.py")
        findings = [f for f in report.findings if f.rule == "blocking-under-lock"]
        blocked = {f.key.rsplit("::", 1)[-1] for f in findings}
        assert blocked == {"sleep", "result", "shutdown"}
        # stop_fast's shutdown(wait=False) is exempt.
        assert all("stop_fast" not in f.key for f in findings)

    def test_epoch_bump(self):
        report = _lint("bad_epoch.py")
        findings = [f for f in report.findings if f.rule == "epoch-bump"]
        assert [f.key.rsplit("::", 1)[-1] for f in findings] == [
            "StaleStore.bad_swap"
        ]

    def test_notify_once(self):
        report = _lint("bad_notify.py")
        findings = [f for f in report.findings if f.rule == "notify-once"]
        keys = {f.key.split("::", 1)[-1] for f in findings}
        # DoubleNotify: both unguarded notifiers flagged.
        assert "DoubleNotify.stream::guard" in keys
        assert "DoubleNotify.close::guard" in keys
        # MissingNotify: the generator lacks a finally-notifier and
        # close() never reaches one.
        assert "MissingNotify.stream::finally" in keys
        assert "MissingNotify.close" in keys

    def test_mutable_default(self):
        report = _lint("bad_mutable_default.py")
        findings = [f for f in report.findings if f.rule == "mutable-default"]
        args = {f.key.rsplit("::", 1)[-1] for f in findings}
        assert args == {"acc", "counts", "seen", "buffer"}

    def test_span_balance(self):
        report = _lint("bad_span.py")
        findings = [f for f in report.findings if f.rule == "span-balance"]
        keys = {f.key.split("::", 1)[-1] for f in findings}
        assert keys == {
            "LeakyStream._span",  # stored span no method ends
            "leaky_local::sp",  # happy-path end, not in a finally
            "discarded_span::discard",  # result dropped entirely
        }
        # The finally-disciplined function is silent.
        assert not any("disciplined_local" in f.key for f in findings)

    def test_leaked_cursor(self):
        report = _lint("bad_leaked_cursor.py")
        findings = [f for f in report.findings if f.rule == "resource-lifecycle"]
        assert len(findings) == 1
        (finding,) = findings
        assert finding.key.endswith("::RowReader.first_row::cursor:cur")
        # The provider method and the try/finally consumer are silent.
        assert report.findings == findings

    def test_apply_before_wal(self):
        report = _lint("bad_apply_before_wal.py")
        findings = [f for f in report.findings if f.rule == "durability-ordering"]
        assert len(findings) == 1
        (finding,) = findings
        assert finding.key.endswith("::Ledger.bad_insert::_append_record")
        # The log-first twin is silent.
        assert report.findings == findings

    def test_rename_before_fsync(self):
        report = _lint("bad_rename_before_fsync.py")
        findings = [f for f in report.findings if f.rule == "durability-ordering"]
        assert len(findings) == 1
        (finding,) = findings
        assert finding.key.endswith("::Publisher.publish::replace:tmp")
        # The full-chain twin is silent.
        assert report.findings == findings

    def test_swallowed_base_exception(self):
        report = _lint("bad_swallow.py")
        findings = [f for f in report.findings if f.rule == "exception-flow"]
        assert len(findings) == 1
        (finding,) = findings
        assert finding.key.endswith("::Sink.drain::BaseException#1")
        # The re-raising twin is silent.
        assert report.findings == findings

    def test_curve_matrix_gap(self):
        base = FIXTURES / "bad_curve_matrix"
        report = lint_tree(
            src=base / "registry.py",
            registry=base / "registry.py",
            tests=base / "tests",
            use_baseline=False,
        )
        findings = [f for f in report.findings if f.rule == "curve-matrix-gap"]
        assert [f.key for f in findings] == ["gamma"]


# ----------------------------------------------------------------------
# No false positives
# ----------------------------------------------------------------------
class TestCleanTargets:
    def test_clean_fixture_is_silent(self):
        report = _lint("clean_module.py")
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.ok

    def test_real_tree_is_clean_modulo_baseline(self):
        """The shipped analyzer + shipped baseline pass on the shipped
        tree — the exact invocation CI blocks on."""
        report = lint_tree()
        assert report.ok, "\n" + report.render(verbose=True)

    def test_baselined_exceptions_are_reported_not_fatal(self):
        report = lint_tree()
        # The intentional exceptions (see lint_baseline.txt) are visible
        # as suppressed findings, not silently dropped.
        assert {f.key for f in report.suppressed} >= {"peano", "z"}

    def test_new_rule_families_raw_on_real_tree(self):
        """Without the baseline: the lifecycle and durability rules are
        genuinely clean on the shipped tree, and the only exception-flow
        findings are the five documented intentional swallows."""
        report = lint_tree(use_baseline=False)
        rules = {f.rule for f in report.findings}
        assert "resource-lifecycle" not in rules
        assert "durability-ordering" not in rules
        swallows = {
            f.key.split("::", 1)[1]
            for f in report.findings
            if f.rule == "exception-flow"
        }
        assert swallows == {
            "Counter.inc::Exception#1",
            "Gauge.set::Exception#1",
            "Gauge.inc::Exception#1",
            "Histogram._fold_locked::Exception#1",
            "scan_wal::Exception#1",
        }


# ----------------------------------------------------------------------
# Report/baseline mechanics
# ----------------------------------------------------------------------
class TestBaseline:
    def test_baseline_suppresses_by_rule_and_key(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            "unguarded-access {}::LeakyCounter.peek::_count  # demo\n".format(
                "tests/devtools/fixtures/bad_unguarded.py"
            )
        )
        raw = _lint("bad_unguarded.py")
        (key,) = [
            f.key for f in raw.findings if f.key.endswith("peek::_count")
        ]
        baseline.write_text(f"unguarded-access {key}  # demo\n")
        report = lint_tree(src=FIXTURES / "bad_unguarded.py", baseline=baseline)
        assert len(report.suppressed) == 1
        assert len(report.findings) == len(raw.findings) - 1
        assert not report.unused_baseline

    def test_stale_baseline_entry_fails_the_run(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("epoch-bump nonexistent::key  # stale\n")
        report = lint_tree(src=FIXTURES / "clean_module.py", baseline=baseline)
        assert not report.ok
        assert report.unused_baseline == ["epoch-bump nonexistent::key"]

    def test_malformed_baseline_line_raises(self, tmp_path):
        baseline = tmp_path / "baseline.txt"
        baseline.write_text("just-one-token\n")
        with pytest.raises(ValueError, match="malformed baseline"):
            load_baseline(baseline)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_tree(rules=["unguarded-access", "made-up-rule"])

    def test_rule_filter_drops_other_rules(self):
        report = _lint("bad_mutable_default.py", rules=["epoch-bump"])
        assert report.findings == []


class TestFindingRendering:
    def test_render_shape(self):
        finding = Finding(
            rule="epoch-bump", path="a/b.py", line=7, message="m", key="k"
        )
        assert finding.render() == "a/b.py:7: [epoch-bump] m"

    def test_repo_level_finding_renders_without_line(self):
        finding = Finding(
            rule="curve-matrix-gap", path="a/b.py", line=0, message="m", key="k"
        )
        assert finding.render() == "a/b.py: [curve-matrix-gap] m"

    def test_report_summary_counts(self):
        report = LintReport()
        report.extend(
            [Finding(rule="r", path="p", line=1, message="m", key="k")]
        )
        rendered = report.render()
        assert "1 finding(s)" in rendered

    def test_all_rules_listed(self):
        assert set(ALL_RULES) == {
            "unguarded-access",
            "lock-order",
            "blocking-under-lock",
            "epoch-bump",
            "notify-once",
            "mutable-default",
            "span-balance",
            "resource-lifecycle",
            "durability-ordering",
            "exception-flow",
            "curve-matrix-gap",
        }
