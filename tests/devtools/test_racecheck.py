"""Unit tests for the runtime race-detector harness.

The sharded concurrency hammer (tests/index/test_sharded_concurrency.py)
proves the harness against the real store; these tests pin the
primitives themselves — edge recording, re-entrancy, alias resolution,
field watching, and every violation kind — with deterministic
single- and two-thread scenarios.
"""

import threading

import pytest

from repro.devtools.racecheck import (
    FieldViolation,
    LockOrderTracker,
    OrderViolation,
    TrackedLock,
    watch_fields,
)


def _locks(tracker):
    mutex = tracker.wrap(threading.RLock(), "_mutex")
    io = tracker.wrap(threading.Lock(), "_io_lock")
    return mutex, io


class TestEdgeRecording:
    def test_nested_acquire_records_an_edge(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with mutex:
            with io:
                pass
        assert tracker.edges() == {("_mutex", "_io_lock"): 1}
        assert tracker.acquire_counts() == {"_mutex": 1, "_io_lock": 1}

    def test_reentrant_reacquire_adds_no_edge(self):
        tracker = LockOrderTracker()
        mutex, _ = _locks(tracker)
        with mutex:
            with mutex:  # RLock re-entry
                pass
        assert tracker.edges() == {}
        assert tracker.acquire_counts() == {"_mutex": 1}

    def test_sequential_acquires_add_no_edge(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with mutex:
            pass
        with io:
            pass
        assert tracker.edges() == {}

    def test_alias_resolves_to_canonical_name(self):
        tracker = LockOrderTracker(aliases={"_migration_lock": "_mutex"})
        migration = tracker.wrap(threading.RLock(), "_migration_lock")
        io = tracker.wrap(threading.Lock(), "_io_lock")
        with migration:
            assert tracker.holds("_mutex")
            with io:
                pass
        assert tracker.edges() == {("_mutex", "_io_lock"): 1}

    def test_stacks_are_per_thread(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        seen_in_thread = []

        def other():
            seen_in_thread.append(tracker.holds("_mutex"))
            with io:
                pass

        with mutex:
            t = threading.Thread(target=other)
            t.start()
            t.join()
        # The other thread does not inherit this thread's holds, so its
        # io acquire creates no _mutex -> _io_lock edge.
        assert seen_in_thread == [False]
        assert tracker.edges() == {}


class TestOrderVerdicts:
    def test_clean_run_has_no_violations(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with mutex:
            with io:
                pass
        assert tracker.order_violations() == []
        tracker.assert_clean()

    def test_cycle_detected(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with mutex:
            with io:
                pass
        with io:
            with mutex:
                pass
        kinds = {v.kind for v in tracker.order_violations()}
        assert "cycle" in kinds
        assert "declared-order" in kinds  # io -> mutex breaks the order too
        with pytest.raises(AssertionError, match="deadlock schedule exists"):
            tracker.assert_clean()

    def test_declared_order_alone(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with io:
            with mutex:
                pass
        violations = tracker.order_violations()
        assert [v.kind for v in violations] == ["declared-order"]

    def test_unexpected_edge_against_static_graph(self):
        tracker = LockOrderTracker()
        mutex, io = _locks(tracker)
        with mutex:
            with io:
                pass
        # Edge is legal by order but absent from the allowed set.
        violations = tracker.order_violations(allowed_edges=set())
        assert [v.kind for v in violations] == ["unexpected-edge"]
        tracker.assert_clean(allowed_edges={("_mutex", "_io_lock")})

    def test_locks_outside_declared_order_are_unordered(self):
        tracker = LockOrderTracker()
        a = tracker.wrap(threading.Lock(), "_other_a")
        b = tracker.wrap(threading.Lock(), "_other_b")
        with a:
            with b:
                pass
        assert tracker.order_violations() == []


class TestTrackedLock:
    def test_delegates_protocol(self):
        tracker = LockOrderTracker()
        lock = tracker.wrap(threading.Lock(), "_io_lock")
        assert isinstance(lock, TrackedLock)
        assert lock.name == "_io_lock"
        assert not lock.locked()
        assert lock.acquire()
        assert lock.locked()
        assert tracker.holds("_io_lock")
        lock.release()
        assert not tracker.holds("_io_lock")

    def test_failed_nonblocking_acquire_is_not_recorded(self):
        tracker = LockOrderTracker()
        inner = threading.Lock()
        lock = tracker.wrap(inner, "_io_lock")
        inner.acquire()
        try:
            assert lock.acquire(blocking=False) is False
            assert not tracker.holds("_io_lock")
            assert tracker.acquire_counts() == {}
        finally:
            inner.release()

    def test_instrument_replaces_attributes(self):
        class Box:
            def __init__(self):
                self._mutex = threading.RLock()
                self._io_lock = threading.Lock()

        tracker = LockOrderTracker()
        box = Box()
        tracker.instrument(box, ["_mutex", "_io_lock"])
        assert isinstance(box._mutex, TrackedLock)
        assert isinstance(box._io_lock, TrackedLock)
        with box._mutex:
            with box._io_lock:
                pass
        assert tracker.edges() == {("_mutex", "_io_lock"): 1}


class TestWatchFields:
    class Counter:
        def __init__(self):
            self._mutex = threading.RLock()
            self._count = 0

        def bump_locked(self):
            with self._mutex:
                self._count += 1

        def bump_unlocked(self):
            self._count += 1

    def _watched(self, tracker):
        counter = self.Counter()
        tracker.instrument(counter, ["_mutex"])
        watch_fields(counter, tracker, {"_count": "_mutex"})
        return counter

    def test_guarded_access_is_clean(self):
        tracker = LockOrderTracker()
        counter = self._watched(tracker)
        counter.bump_locked()
        assert counter._mutex.inner  # object still functional
        with counter._mutex:
            assert counter._count == 1
        assert tracker.field_violations() == ()

    def test_unguarded_write_is_recorded_not_raised(self):
        tracker = LockOrderTracker()
        counter = self._watched(tracker)
        counter.bump_unlocked()  # does not raise
        violations = tracker.field_violations()
        # One read (the += load) and one write.
        operations = sorted(v.operation for v in violations)
        assert operations == ["read", "write"]
        assert all(v.field == "_count" and v.lock == "_mutex" for v in violations)
        with pytest.raises(AssertionError, match="unguarded-write"):
            tracker.assert_clean()

    def test_value_migrates_to_shadow_slot(self):
        tracker = LockOrderTracker()
        counter = self._watched(tracker)
        assert "_count" not in counter.__dict__
        with counter._mutex:
            counter._count = 41
            counter._count += 1
            assert counter._count == 42
        assert counter.__dict__["_racecheck_shadow___count"] == 42

    def test_violation_rendering(self):
        violation = FieldViolation(
            field="_count", lock="_mutex", operation="write", thread="T1"
        )
        assert "unguarded-write" in violation.render()
        order = OrderViolation(
            kind="cycle", first="_a", second="_b", details="d"
        )
        assert order.render() == "[cycle] _a -> _b: d"
