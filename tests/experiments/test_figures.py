"""The figure experiments regenerate the paper's qualitative claims."""

import pytest

from repro.experiments import fig1, fig2, fig5, fig6, fig7
from repro.experiments.config import SCALES

TINY = SCALES["ci"]


class TestFig1:
    def test_witness_exists_with_paper_counts(self):
        witness = fig1.find_witness(hilbert_clusters=2, z_clusters=4)
        assert witness is not None

    def test_report_shape(self):
        result = fig1.run()
        assert result.experiment == "fig1"
        assert result.rows


class TestFig2:
    def test_paper_cells_reproduced(self):
        """One translation has onion=1 and hilbert=5, as drawn."""
        result = fig2.run()
        data_rows = result.rows[:-1]
        assert any(o == 1 and h == 5 for _, o, h in data_rows)

    def test_onion_never_worse_on_7x7(self):
        result = fig2.run()
        for _, onion, hilbert in result.rows[:-1]:
            assert onion <= hilbert


class TestFig5:
    @pytest.fixture(scope="class")
    def result_2d(self):
        return fig5.run(TINY, dim=2)

    @pytest.fixture(scope="class")
    def result_3d(self):
        return fig5.run(TINY, dim=3)

    def test_huge_gap_at_large_lengths_2d(self, result_2d):
        """Paper: onion is dramatically better once ℓ > side/2."""
        gaps = result_2d.column("median gap (h/o)")
        assert gaps[0] > 5  # largest squares

    def test_gap_decreases_with_length_2d(self, result_2d):
        gaps = result_2d.column("median gap (h/o)")
        assert gaps[0] > gaps[len(gaps) // 2] > gaps[-1] * 0.5

    def test_comparable_at_small_lengths_2d(self, result_2d):
        gaps = result_2d.column("median gap (h/o)")
        assert 0.7 <= gaps[-1] <= 1.5

    def test_huge_gap_at_large_lengths_3d(self, result_3d):
        gaps = result_3d.column("median gap (h/o)")
        assert gaps[0] > 20  # paper reports >200x at paper scale

    def test_rows_cover_requested_lengths(self, result_2d):
        assert len(result_2d.rows) == len(TINY.fig5_lengths_2d())

    def test_exact_mode_no_longer_samples(self):
        """exact=True sweeps every placement; the sampled medians must sit
        inside the exact envelope and the gap shape must persist."""
        result = fig5.run(TINY, dim=2, exact=True)
        assert result.experiment == "fig5a-exact"
        assert len(result.rows) == len(TINY.fig5_lengths_2d())
        gaps = result.column("median gap (h/o)")
        assert gaps[0] > 5
        assert 0.7 <= gaps[-1] <= 1.5

    def test_exact_mode_is_deterministic(self):
        a = fig5.run(TINY, dim=2, exact=True)
        b = fig5.run(TINY, dim=2, exact=True)
        assert a.rows == b.rows


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(TINY, dim=2)

    def test_biggest_advantage_near_ratio_one(self, result):
        ratios = result.column("ratio")
        gaps = result.column("median gap (h/o)")
        by_ratio = dict(zip(ratios, gaps))
        near_cube_gap = by_ratio.get("1", 0)
        extreme_gaps = [g for r, g in by_ratio.items() if r in ("0.25", "4")]
        assert near_cube_gap >= max(extreme_gaps) - 0.2

    def test_3d_variant_runs(self):
        result = fig6.run(TINY, dim=3)
        assert result.rows

    def test_exact_mode_evaluates_all_placements(self, result):
        exact = fig6.run(TINY, dim=2, exact=True)
        assert exact.experiment == "fig6a-exact"
        # Every retained shape contributes all of its placements, far more
        # than the sampled per_length positions per shape.
        assert sum(exact.column("queries")) > sum(result.column("queries"))
        near_cube = dict(zip(exact.column("ratio"), exact.column("median gap (h/o)")))
        assert near_cube.get("1", 0) >= 1


class TestFig7:
    def test_onion_median_not_worse_2d(self):
        result = fig7.run(TINY, dim=2)
        medians = dict(zip(result.column("curve"), result.column("median")))
        assert medians["onion"] <= medians["hilbert"] * 1.05

    def test_onion_median_not_worse_3d(self):
        result = fig7.run(TINY, dim=3)
        medians = dict(zip(result.column("curve"), result.column("median")))
        assert medians["onion"] <= medians["hilbert"] * 1.05
