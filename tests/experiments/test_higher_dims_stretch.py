"""The 4-d extension and stretch-table experiments."""

import pytest

from repro.experiments import higher_dims, stretch_table
from repro.experiments.config import SCALES

TINY = SCALES["ci"]


class TestHigherDims:
    @pytest.fixture(scope="class")
    def result(self):
        return higher_dims.run(TINY)

    def test_onion_wins_near_full_4d_cubes(self, result):
        """The paper's future-work claim, measured: the layer ordering
        keeps its advantage in four dimensions."""
        last = result.rows[-1]  # the largest cube
        assert last[-1] > 3  # hilbert/onion ratio

    def test_onion_competitive_at_small_cubes(self, result):
        first = result.rows[0]
        assert first[-1] > 0.6  # within ~1.6x of hilbert on tiny cubes

    def test_advantage_grows_with_length(self, result):
        ratios = [row[-1] for row in result.rows]
        assert ratios[-1] > ratios[0]


class TestStretchTable:
    @pytest.fixture(scope="class")
    def result(self):
        return stretch_table.run(TINY)

    def test_all_curves_present(self, result):
        assert set(result.column("curve")) == set(stretch_table.CURVES)

    def test_onion_best_clustering(self, result):
        clustering = dict(zip(result.column("curve"), result.column("clustering")))
        assert clustering["onion"] == min(clustering.values())

    def test_hilbert_best_stretch(self, result):
        stretch = dict(
            zip(result.column("curve"), result.column("GL stretch (worst)"))
        )
        assert stretch["hilbert"] == min(stretch.values())

    def test_continuous_curves_have_unit_steps(self, result):
        worst_step = dict(zip(result.column("curve"), result.column("worst step")))
        for name in ("onion", "hilbert", "snake"):
            assert worst_step[name] == 1
