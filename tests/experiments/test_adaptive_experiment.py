"""The adaptive drifting-trace experiment (rows → cubes, migrated live)."""

import pytest

from repro.experiments import adaptive
from repro.experiments.config import SCALES


@pytest.fixture(scope="module")
def result():
    return adaptive.run(SCALES["ci"], dim=2)


class TestAdaptiveExperiment:
    def test_cutover_happens_mid_trace(self, result):
        assert any("cutover after query" in note for note in result.notes)

    def test_phases_cover_the_whole_trace(self, result):
        phases = result.column("phase")
        assert phases[0].startswith("rows")
        assert any("drifted tail" in p for p in phases)
        total = sum(result.column("queries"))
        assert str(total) in result.title  # every query lands in a phase

    def test_adaptive_beats_static_on_the_drifted_tail(self, result):
        """The acceptance criterion: strictly fewer seeks after cutover."""
        for phase, static_seeks, adaptive_seeks in zip(
            result.column("phase"),
            result.column("static seeks"),
            result.column("adaptive seeks"),
        ):
            if "drifted tail" in phase:
                assert adaptive_seeks < static_seeks

    def test_rows_phase_identical_before_drift(self, result):
        """Before the drift both indexes are the same curve: same seeks."""
        row = result.rows[0]
        assert row[2] == row[3]

    def test_expected_seeks_note_ranks_onion_first_on_tail(self, result):
        note = next(n for n in result.notes if n.startswith("expected seeks"))
        assert "onion" in note and "rowmajor" in note

    def test_3d_variant_also_migrates(self):
        result = adaptive.run(SCALES["ci"], dim=3)
        assert any("cutover after query" in note for note in result.notes)
        for phase, static_seeks, adaptive_seeks in zip(
            result.column("phase"),
            result.column("static seeks"),
            result.column("adaptive seeks"),
        ):
            if "drifted tail" in phase:
                assert adaptive_seeks < static_seeks
