"""Scale presets and parameter derivations."""

import pytest

from repro.experiments.config import SCALES, Scale, fig5_lengths, get_scale


class TestScales:
    def test_paper_scale_matches_section_vii(self):
        paper = SCALES["paper"]
        assert paper.side_2d == 1024
        assert paper.side_3d == 512
        assert paper.queries_2d == 1000
        assert paper.queries_3d == 500
        assert paper.ratio_step_2d == 50
        assert paper.per_length == 20

    def test_paper_fig5_2d_lengths(self):
        """ℓ = 1024 − 50k for odd k in 1..19."""
        lengths = SCALES["paper"].fig5_lengths_2d()
        assert lengths == [1024 - 50 * k for k in range(1, 20, 2)]

    def test_paper_fig5_3d_lengths(self):
        """Exactly the listed sides at ∛n = 512."""
        assert SCALES["paper"].fig5_lengths_3d() == [472, 432, 192, 152, 112, 72, 32]

    def test_ci_lengths_preserve_shape(self):
        """Scaled lengths keep the same fractions of the side."""
        ci = SCALES["ci"]
        lengths = ci.fig5_lengths_2d()
        assert all(1 <= l < ci.side_2d for l in lengths)
        assert lengths == sorted(lengths, reverse=True)
        # the largest stays near the side, the smallest near 0.1x
        assert lengths[0] / ci.side_2d > 0.9
        assert lengths[-1] / ci.side_2d < 0.2


class TestGetScale:
    def test_by_name(self):
        assert get_scale("paper").name == "paper"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"

    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "ci"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_scale("huge")


class TestFig5Lengths:
    def test_dim_dispatch(self):
        ci = SCALES["ci"]
        assert fig5_lengths(ci, 2) == ci.fig5_lengths_2d()
        assert fig5_lengths(ci, 3) == ci.fig5_lengths_3d()

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            fig5_lengths(SCALES["ci"], 4)
