"""The sharded serving experiment: fig7 workloads scattered over shards."""

from repro.experiments import sharded_io
from repro.experiments.cli import main
from repro.experiments.config import SCALES


class TestShardedIo:
    def test_every_row_is_transparent(self):
        result = sharded_io.run(SCALES["ci"], dim=2)
        assert result.column("same as unsharded")
        assert all(flag == "yes" for flag in result.column("same as unsharded"))
        assert any("identical to unsharded" in note for note in result.notes)

    def test_seeks_do_not_depend_on_shard_count(self):
        result = sharded_io.run(SCALES["ci"], dim=2)
        by_curve = {}
        for curve, seeks in zip(result.column("curve"), result.column("batch seeks")):
            by_curve.setdefault(curve, set()).add(seeks)
        for curve, seek_values in by_curve.items():
            assert len(seek_values) == 1, (curve, seek_values)

    def test_parallel_latency_improves_with_shards(self):
        result = sharded_io.run(SCALES["ci"], dim=2)
        for curve in ("onion", "hilbert"):
            rows = [
                (shards, speedup)
                for c, shards, speedup in zip(
                    result.column("curve"),
                    result.column("shards"),
                    result.column("speedup"),
                )
                if c == curve
            ]
            speedups = [s for _, s in sorted(rows)]
            assert speedups[0] == 1
            assert speedups[-1] > 1.5, (curve, speedups)

    def test_3d_variant_runs(self):
        result = sharded_io.run(SCALES["ci"], dim=3)
        assert result.experiment == "shardedb"
        assert result.rows

    def test_registered_in_cli(self, capsys):
        assert main(["sharded", "--dim", "2", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "shardeda" in out and "avg fan-out" in out
