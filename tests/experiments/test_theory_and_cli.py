"""Theory-validation experiment and the CLI entry point."""

import pytest

from repro.experiments import theory_validation
from repro.experiments.cli import main
from repro.experiments.config import SCALES


class TestTheoryValidation:
    def test_every_row_ok(self):
        result = theory_validation.run(SCALES["ci"])
        statuses = result.column("status")
        assert statuses and all(s == "OK" for s in statuses)

    def test_covers_all_four_theorems(self):
        result = theory_validation.run(SCALES["ci"])
        quantities = " ".join(result.column("quantity"))
        for marker in ("thm1", "thm2", "thm4", "thm5"):
            assert marker in quantities


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "onion" in out

    def test_dimmed_experiment_with_dim(self, capsys):
        assert main(["fig7", "--dim", "2", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "fig7b" not in out

    def test_dimmed_experiment_both_dims(self, capsys):
        assert main(["fig7", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "fig7b" in out

    def test_exact_flag_sweeps_every_placement(self, capsys):
        assert main(["fig5", "--dim", "2", "--scale", "ci", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "fig5a-exact" in out and "ALL placements" in out

    def test_exact_flag_ignored_for_sampled_experiments(self, capsys):
        assert main(["fig7", "--dim", "2", "--scale", "ci", "--exact"]) == 0
        assert "fig7a" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figX"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--scale", "galactic"])
