"""Box-plot summaries and table rendering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.report import ExperimentResult, format_table
from repro.experiments.stats import BoxStats


class TestBoxStats:
    def test_known_distribution(self):
        stats = BoxStats.from_counts([1, 2, 3, 4, 5])
        assert stats.minimum == 1
        assert stats.median == 3
        assert stats.maximum == 5
        assert stats.mean == 3
        assert stats.q25 == 2
        assert stats.q75 == 4

    def test_single_value(self):
        stats = BoxStats.from_counts([7])
        assert stats.as_row() == (7, 7, 7, 7, 7, 7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_counts([])

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200))
    def test_ordering_invariant(self, counts):
        stats = BoxStats.from_counts(counts)
        assert (
            stats.minimum <= stats.q25 <= stats.median <= stats.q75 <= stats.maximum
        )
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_str_contains_five_numbers(self):
        text = str(BoxStats.from_counts([1, 2, 3]))
        for field in ("min=", "q25=", "med=", "q75=", "max=", "mean="):
            assert field in text


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(l.rstrip()) for l in lines[:2])) >= 1

    def test_float_trimming(self):
        table = format_table(["x"], [[2.0]])
        assert "2" in table and "2.000" not in table


class TestExperimentResult:
    def test_render_includes_everything(self):
        result = ExperimentResult(
            experiment="figX",
            title="demo",
            headers=["h1", "h2"],
            rows=[(1, 2)],
            notes=["a note"],
        )
        text = result.render()
        assert "figX" in text and "demo" in text
        assert "h1" in text and "a note" in text

    def test_column_extraction(self):
        result = ExperimentResult("e", "t", ["a", "b"], [(1, 2), (3, 4)])
        assert result.column("b") == [2, 4]
        with pytest.raises(ValueError):
            result.column("missing")
