"""The engine I/O experiment: fig5/fig7 workloads through execute_batch."""

from repro.experiments import engine_io
from repro.experiments.cli import main
from repro.experiments.config import SCALES


class TestEngineIo:
    def test_batch_never_needs_more_seeks(self):
        result = engine_io.run(SCALES["ci"], dim=2)
        loop = result.column("loop seeks")
        batch = result.column("batch seeks")
        assert loop and len(loop) == len(batch)
        assert all(b <= l for b, l in zip(batch, loop))
        assert sum(batch) < sum(loop)  # strict in aggregate

    def test_covers_fig5_and_fig7_workloads_for_both_curves(self):
        result = engine_io.run(SCALES["ci"], dim=2)
        workloads = " ".join(result.column("workload"))
        assert "fig5" in workloads and "fig7" in workloads
        assert set(result.column("curve")) == {"onion", "hilbert"}

    def test_3d_variant_runs(self):
        result = engine_io.run(SCALES["ci"], dim=3)
        assert result.experiment == "engineb"
        assert result.rows

    def test_registered_in_cli(self, capsys):
        assert main(["engine", "--dim", "2", "--scale", "ci"]) == 0
        out = capsys.readouterr().out
        assert "enginea" in out and "batch seeks" in out
