"""Table I, Table II, Lemma 5 and Lemma 10 regenerations."""

import math

import pytest

from repro.experiments import lemma5, rows_columns, table1, table2
from repro.experiments.config import SCALES

TINY = SCALES["ci"]


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(TINY)

    def test_analytic_maxima(self, result):
        rows = {r[0]: r[1] for r in result.rows}
        assert "2.319" in rows["onion 2d analytic max"]
        assert "3.389" in rows["onion 3d analytic max"]

    def test_measured_onion_near_bound(self, result):
        rows = {r[0]: r[1] for r in result.rows}
        measured_2d = float(rows["onion 2d measured max, phi<=1/2 (side 128)"])
        assert measured_2d <= 2.32 + 0.15
        measured_3d = float(rows["onion 3d measured max, phi<=1/2 (side 32)"])
        assert measured_3d <= 3.4 + 0.15

    def test_hilbert_growth_rows_present(self, result):
        quantities = [r[0] for r in result.rows]
        assert any("hilbert 2d growth" in q for q in quantities)
        assert any("hilbert 3d growth" in q for q in quantities)

    def test_hilbert_growth_at_least_theory(self, result):
        for row in result.rows:
            if "hilbert 2d growth" in row[0]:
                assert all(float(v) >= 2.0 for v in row[1].split())
            if "hilbert 3d growth" in row[0]:
                assert all(float(v) >= 4.0 for v in row[1].split())

    def test_onion_flat_at_same_cubes(self, result):
        for row in result.rows:
            if row[0] == "onion 2d at same cubes":
                values = [float(v) for v in row[1].split()]
                assert max(values) - min(values) < 1.0

    def test_large_phi_ratio_shrinks_with_side(self, result):
        """The side-doubling pairs a->b must have b <= a (+noise)."""
        for row in result.rows:
            if "ratio at phi>1/2" in row[0]:
                for pair in row[1].split():
                    a, b = (float(v) for v in pair.split("->"))
                    assert b <= a + 0.05


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(TINY)

    def test_all_ten_cases_present(self, result):
        assert len(result.rows) == 10

    def test_eta_prime_at_least_one(self, result):
        """c(Q, O) can never be below a valid lower bound."""
        for row in result.rows:
            assert row[2] >= 1.0 - 1e-9, row

    def test_worst_phi_2d_tracks_232(self, result):
        for row in result.rows:
            if row[0].startswith("2d mu=1 phi=0.355"):
                assert row[3] == pytest.approx(2.32, abs=0.15)

    def test_small_query_cases_near_optimal(self, result):
        """mu=0 rows: eta' close to 1 (the paper proves optimality)."""
        for row in result.rows:
            if "mu=0" in row[0]:
                assert row[2] <= 1.35

    def test_asymptotic_bounds_hold_with_finite_slack(self, result):
        """2η' stays within the paper bound plus finite-size slack
        (generous at CI scale; shrinks at larger scales)."""
        for row in result.rows:
            label, _, _, two_eta, bound = row
            slack = 2.0 if "psi" in label or "phi=0.75" in label else 1.5
            assert two_eta <= bound + slack, row


class TestLemma5Experiment:
    def test_2d(self):
        result = lemma5.run(TINY, dim=2)
        growth = [g for g in result.column("hilbert growth") if not math.isnan(g)]
        assert all(g >= 2.0 for g in growth)
        onion = result.column("onion")
        assert max(onion) - min(onion) < 1.0

    def test_3d(self):
        result = lemma5.run(TINY, dim=3)
        growth = [g for g in result.column("hilbert growth") if not math.isnan(g)]
        assert all(g >= 4.0 for g in growth)


class TestRowsColumns:
    @pytest.fixture(scope="class")
    def result(self):
        return rows_columns.run(TINY)

    def test_every_curve_meets_the_bound(self, result):
        assert all(row[-1] == "yes" for row in result.rows)

    def test_rowmajor_extremes(self, result):
        by_name = {row[0]: row for row in result.rows}
        side = float(by_name["rowmajor"][2])
        assert by_name["rowmajor"][1] == 1
        assert side == by_name["columnmajor"][1]

    def test_bound_is_tight_for_some_curve(self, result):
        """onion/hilbert achieve exactly sqrt(n)/2 (the corrected constant)."""
        side_half = min(float(r[3]) for r in result.rows)
        names_at_min = [r[0] for r in result.rows if float(r[3]) == side_half]
        assert "onion" in names_at_min or "hilbert" in names_at_min
