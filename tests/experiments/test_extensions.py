"""The extension experiments: exact distributions and the gap ablation."""

import pytest

from repro.experiments import distributions, gap_ablation
from repro.experiments.config import SCALES

TINY = SCALES["ci"]


class TestExactDistributions:
    @pytest.fixture(scope="class")
    def result(self):
        return distributions.run(TINY, dim=2)

    def test_exact_gap_shape_matches_fig5(self, result):
        gaps = result.column("median gap (h/o)")
        assert gaps[0] > 5
        assert gaps[-1] < 2

    def test_3d_variant(self):
        result = distributions.run(TINY, dim=3)
        gaps = result.column("median gap (h/o)")
        assert gaps[0] > 10


class TestGapAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return gap_ablation.run(TINY)

    def test_rows_cover_all_tolerances_and_curves(self, result):
        tolerances = set(result.column("gap tolerance"))
        assert tolerances == set(gap_ablation.GAP_TOLERANCES)
        assert set(result.column("curve")) == {"onion", "hilbert", "zorder"}

    def test_returned_counts_identical(self, result):
        assert len(set(result.column("returned"))) == 1

    def test_seeks_monotone_in_tolerance(self, result):
        by_curve = {}
        for tolerance, curve, seeks, _, _, _ in result.rows:
            by_curve.setdefault(curve, []).append((tolerance, seeks))
        for curve, series in by_curve.items():
            series.sort()
            seeks = [s for _, s in series]
            assert seeks == sorted(seeks, reverse=True) or all(
                a >= b for a, b in zip(seeks, seeks[1:])
            ), (curve, seeks)

    def test_onion_wins_at_zero_tolerance(self, result):
        at_zero = {
            curve: seeks
            for tolerance, curve, seeks, _, _, _ in result.rows
            if tolerance == 0
        }
        assert at_zero["onion"] < at_zero["hilbert"]
        assert at_zero["onion"] < at_zero["zorder"]

    def test_expected_seeks_ranks_curves_like_measured(self, result):
        """The sweep-derived E[seeks] column predicts the curve ranking."""
        at_zero = {
            curve: (seeks, expected)
            for tolerance, curve, seeks, expected, _, _ in result.rows
            if tolerance == 0
        }
        measured_order = sorted(at_zero, key=lambda c: at_zero[c][0])
        expected_order = sorted(at_zero, key=lambda c: at_zero[c][1])
        assert measured_order == expected_order
        for curve, (seeks, expected) in at_zero.items():
            assert expected > 0, curve

    def test_overread_zero_without_tolerance(self, result):
        for tolerance, _, _, _, over_read, _ in result.rows:
            if tolerance == 0:
                assert over_read == 0
