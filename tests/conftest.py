"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.curves import make_curve

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Curve-name/dimension pairs exercised by the generic cross-curve tests.
ALL_CURVE_SPECS = [
    ("onion", 2),
    ("onion", 3),
    ("onion-nd", 2),
    ("onion-nd", 3),
    ("hilbert", 2),
    ("hilbert", 3),
    ("zorder", 2),
    ("zorder", 3),
    ("gray", 2),
    ("rowmajor", 2),
    ("columnmajor", 2),
    ("snake", 2),
    ("snake", 3),
]


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(params=ALL_CURVE_SPECS, ids=lambda s: f"{s[0]}-{s[1]}d")
def small_curve(request):
    """Each registered curve on a small universe (side 8)."""
    name, dim = request.param
    return make_curve(name, 8, dim)


@pytest.fixture(params=[spec for spec in ALL_CURVE_SPECS if spec[1] == 2],
                ids=lambda s: f"{s[0]}-2d")
def small_curve_2d(request):
    """Each 2-d curve on a side-16 universe."""
    name, _ = request.param
    return make_curve(name, 16, 2)
