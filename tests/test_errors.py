"""The exception hierarchy contracts."""

import pytest

from repro.errors import (
    CurveCapabilityError,
    InvalidQueryError,
    InvalidUniverseError,
    OutOfUniverseError,
    PageError,
    ReproError,
    StorageError,
    TreeError,
    UnknownCurveError,
)


@pytest.mark.parametrize(
    "exc",
    [
        InvalidUniverseError,
        OutOfUniverseError,
        InvalidQueryError,
        CurveCapabilityError,
        UnknownCurveError,
        StorageError,
        PageError,
        TreeError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_value_errors_are_catchable_as_builtin():
    assert issubclass(InvalidUniverseError, ValueError)
    assert issubclass(OutOfUniverseError, ValueError)
    assert issubclass(InvalidQueryError, ValueError)
    assert issubclass(PageError, ValueError)


def test_capability_error_is_type_error():
    assert issubclass(CurveCapabilityError, TypeError)


def test_unknown_curve_is_key_error():
    assert issubclass(UnknownCurveError, KeyError)


def test_storage_errors_nest():
    assert issubclass(PageError, StorageError)
    assert issubclass(TreeError, StorageError)
