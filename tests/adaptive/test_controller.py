"""AdaptiveController: the observe → detect → migrate loop, end to end."""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveController,
    DriftDetector,
    OnlineMigrator,
    WorkloadRecorder,
)
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

SIDE = 16


def full_grid():
    return [(x, y) for x in range(SIDE) for y in range(SIDE)]


def build_adaptive(kind="single", curve="rowmajor", half_life=6.0, **kwargs):
    recorder = WorkloadRecorder(half_life=half_life)
    cls = ShardedSFCIndex if kind == "sharded" else SFCIndex
    index = cls(
        make_curve(curve, SIDE, 2), page_capacity=4, recorder=recorder, **kwargs
    )
    index.bulk_load(full_grid())
    index.flush()
    return index


def candidates():
    return [make_curve(name, SIDE, 2) for name in ("rowmajor", "onion", "hilbert")]


def drifting_trace(count=40, seed=3):
    """Rows for the first third, 10x10 cubes after."""
    rng = np.random.default_rng(seed)
    rects = []
    for i in range(count):
        if i < count // 3:
            y = int(rng.integers(0, SIDE))
            rects.append(Rect((0, y), (SIDE - 1, y)))
        else:
            ox, oy = (int(v) for v in rng.integers(0, SIDE - 10 + 1, size=2))
            rects.append(Rect.from_origin((ox, oy), (10, 10)))
    return rects


def controller_for(index, **kwargs):
    return AdaptiveController(
        index,
        candidates(),
        detector=DriftDetector(
            candidates(), regret_threshold=0.15, min_observations=4, check_interval=2
        ),
        migrator=OnlineMigrator(batch_size=64),
        **kwargs,
    )


class TestEndToEnd:
    @pytest.mark.parametrize("kind", ["single", "sharded"])
    def test_rows_to_cubes_trace_migrates_to_onion(self, kind):
        index = build_adaptive(kind)
        controller = controller_for(index)
        static = SFCIndex(make_curve("rowmajor", SIDE, 2), page_capacity=4)
        static.bulk_load(full_grid())
        static.flush()

        cutover_at = None
        static_seeks, adaptive_seeks = [], []
        for i, rect in enumerate(drifting_trace()):
            static_seeks.append(static.range_query(rect).seeks)
            adaptive_seeks.append(index.range_query(rect).seeks)
            event = controller.maybe_adapt()
            if event and event.migration and cutover_at is None:
                cutover_at = i + 1
        assert cutover_at is not None, "drift never triggered a migration"
        assert index.curve.name == "onion"
        # The differential acceptance claim: on the drifted tail the
        # adaptive index spends strictly fewer seeks than the baseline.
        assert sum(adaptive_seeks[cutover_at:]) < sum(static_seeks[cutover_at:])
        assert controller.events
        migrations = [e for e in controller.events if e.migration is not None]
        assert len(migrations) == 1
        assert migrations[0].migration.records == SIDE * SIDE

    def test_stable_workload_never_migrates(self):
        index = build_adaptive()
        controller = controller_for(index)
        rng = np.random.default_rng(5)
        for _ in range(30):
            y = int(rng.integers(0, SIDE))
            index.range_query(Rect((0, y), (SIDE - 1, y)))
            controller.maybe_adapt()
        assert index.curve.name == "rowmajor"
        assert all(e.migration is None for e in controller.events)
        assert all(not e.report.drifted for e in controller.events)


class TestControlKnobs:
    def test_auto_migrate_off_records_but_keeps_curve(self):
        index = build_adaptive()
        controller = controller_for(index, auto_migrate=False)
        rng = np.random.default_rng(7)
        for _ in range(20):
            ox, oy = (int(v) for v in rng.integers(0, SIDE - 10 + 1, size=2))
            index.range_query(Rect.from_origin((ox, oy), (10, 10)))
            controller.maybe_adapt()
        assert index.curve.name == "rowmajor"
        drifted = [e for e in controller.events if e.report.drifted]
        assert drifted and all(e.migration is None for e in drifted)
        event = controller.migrate_to_best()
        assert event.migration is not None and event.migration.migrated
        assert index.curve.name == "onion"

    def test_check_now_bypasses_pacing(self):
        index = build_adaptive()
        controller = controller_for(index)
        index.range_query(Rect((0, 0), (9, 9)))
        assert controller.maybe_adapt() is None or True  # pacing may defer
        event = controller.check_now()
        assert event.report.observations >= 1

    def test_recorder_reset_after_migration(self):
        index = build_adaptive()
        controller = controller_for(index)
        rng = np.random.default_rng(9)
        migrated = False
        for _ in range(30):
            ox, oy = (int(v) for v in rng.integers(0, SIDE - 10 + 1, size=2))
            index.range_query(Rect.from_origin((ox, oy), (10, 10)))
            event = controller.maybe_adapt()
            if event and event.migration:
                migrated = True
                break
        assert migrated
        assert index.recorder.executed_events == 0  # new era starts clean

    def test_keep_recorder_history_when_asked(self):
        index = build_adaptive()
        controller = controller_for(index, reset_recorder_on_migrate=False)
        rng = np.random.default_rng(11)
        for _ in range(30):
            ox, oy = (int(v) for v in rng.integers(0, SIDE - 10 + 1, size=2))
            index.range_query(Rect.from_origin((ox, oy), (10, 10)))
            if controller.maybe_adapt() and index.curve.name == "onion":
                break
        assert index.recorder.executed_events > 0

    def test_event_log_is_bounded(self):
        index = build_adaptive()
        controller = controller_for(index, auto_migrate=False, event_log_size=3)
        for _ in range(6):
            index.range_query(Rect((0, 0), (5, 5)))
            controller.check_now()
        assert len(controller.events) == 3  # oldest decisions dropped
        assert controller.last_report is controller.events[-1].report

    def test_event_render(self):
        index = build_adaptive()
        controller = controller_for(index)
        for _ in range(10):
            index.range_query(Rect((2, 2), (11, 11)))
        event = controller.check_now()
        text = event.render()
        assert "DriftReport" in text
        if event.migration is not None:
            assert "migrated" in text


class TestGuards:
    def test_index_without_recorder_rejected(self):
        index = SFCIndex(make_curve("onion", SIDE, 2))
        with pytest.raises(InvalidQueryError):
            AdaptiveController(index, candidates())

    def test_mismatched_candidate_rejected(self):
        index = build_adaptive()
        with pytest.raises(InvalidQueryError):
            AdaptiveController(index, [make_curve("onion", 8, 2)])
