"""OnlineMigrator: the differential cutover guarantee.

The acceptance bar: after a cutover on a drifting trace, the migrated
index must be *observationally identical* to an index freshly
bulk-loaded on the target curve — records, seeks, pages and over-read,
for every probe query, single and sharded, including queries issued
mid-migration (which must keep serving the old layout).
"""

import threading

import numpy as np
import pytest

from repro.adaptive import OnlineMigrator
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

SIDE = 16


def distinct_points(count, seed=11, side=SIDE):
    """Distinct cells (stable per-key record order across load orders)."""
    rng = np.random.default_rng(seed)
    flat = rng.permutation(side * side)[:count]
    return [(int(k // side), int(k % side)) for k in flat]


def probe_rects(seed=13, count=25, side=SIDE):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, side, size=(count, 2))
    b = rng.integers(0, side, size=(count, 2))
    return [
        Rect(tuple(map(int, np.minimum(x, y))), tuple(map(int, np.maximum(x, y))))
        for x, y in zip(a, b)
    ]


def build(kind, curve_name, points, page_capacity=4, **kwargs):
    curve = make_curve(curve_name, SIDE, 2)
    if kind == "sharded":
        index = ShardedSFCIndex(curve, page_capacity=page_capacity, **kwargs)
    else:
        index = SFCIndex(curve, page_capacity=page_capacity, **kwargs)
    index.bulk_load(points, payloads=range(len(points)))
    index.flush()
    return index


def assert_identical(migrated, fresh, rects, gap_tolerance=0):
    """Same records, seeks, pages and over-read on every probe query."""
    for rect in rects:
        a = migrated.range_query(rect, gap_tolerance=gap_tolerance)
        b = fresh.range_query(rect, gap_tolerance=gap_tolerance)
        assert a.records == b.records
        assert a.seeks == b.seeks
        assert a.pages_read == b.pages_read
        assert a.over_read == b.over_read
    batch_a = migrated.range_query_batch(rects, gap_tolerance=gap_tolerance)
    batch_b = fresh.range_query_batch(rects, gap_tolerance=gap_tolerance)
    assert batch_a.total_seeks == batch_b.total_seeks
    assert batch_a.total_pages_read == batch_b.total_pages_read
    assert batch_a.total_records == batch_b.total_records


class TestDifferentialCutover:
    """Migrated index ≡ fresh bulk load on the target curve."""

    @pytest.mark.parametrize("kind", ["single", "sharded"])
    @pytest.mark.parametrize(
        "source,target",
        [("rowmajor", "onion"), ("onion", "hilbert"), ("hilbert", "rowmajor")],
    )
    def test_records_seeks_pages_identical(self, kind, source, target):
        points = distinct_points(180)
        index = build(kind, source, points)
        # A drifting trace runs before the migration (plans get cached,
        # the executor serves queries) — cutover must retire all of it.
        for rect in probe_rects(seed=7, count=10):
            index.range_query(rect)
        report = index.migrate_to(make_curve(target, SIDE, 2))
        assert report.migrated
        assert report.records == len(points)
        assert report.epoch_after == report.epoch_before + 1
        fresh = build(kind, target, points)
        assert_identical(index, fresh, probe_rects())

    @pytest.mark.parametrize("kind", ["single", "sharded"])
    @pytest.mark.parametrize("page_capacity", [1, 4, 16])
    def test_identical_across_page_capacities(self, kind, page_capacity):
        points = distinct_points(120, seed=5)
        index = build(kind, "rowmajor", points, page_capacity=page_capacity)
        assert index.migrate_to(make_curve("onion", SIDE, 2)).migrated
        fresh = build(kind, "onion", points, page_capacity=page_capacity)
        assert_identical(index, fresh, probe_rects(seed=3))

    @pytest.mark.parametrize("gap", [1, 8])
    def test_identical_under_gap_tolerance(self, gap):
        points = distinct_points(140, seed=9)
        index = build("single", "rowmajor", points)
        index.migrate_to(make_curve("onion", SIDE, 2))
        fresh = build("single", "onion", points)
        assert_identical(index, fresh, probe_rects(seed=21), gap_tolerance=gap)

    def test_sharded_migration_rebalances_routing(self):
        points = distinct_points(160, seed=15)
        index = build("sharded", "rowmajor", points, num_shards=4)
        index.migrate_to(make_curve("onion", SIDE, 2))
        # Every record re-routed through the shard map under its new key.
        assert sum(index.shard_loads) == len(points) == len(index)
        for point in points[:20]:
            assert len(index.point_query(point)) == 1

    def test_migration_after_rebalance(self):
        points = distinct_points(150, seed=19)
        index = build("sharded", "rowmajor", points, num_shards=4)
        index.rebalance()
        index.migrate_to(make_curve("onion", SIDE, 2))
        fresh = build("sharded", "onion", points, num_shards=4)
        assert_identical(index, fresh, probe_rects(seed=33))


class TestMidMigrationServing:
    """Queries issued during re-keying serve the *old* layout, exactly."""

    @pytest.mark.parametrize("kind", ["single", "sharded"])
    def test_queries_between_batches_serve_old_curve(self, kind):
        points = distinct_points(200, seed=23)
        rects = probe_rects(seed=41, count=8)
        index = build(kind, "rowmajor", points)
        old_baseline = build(kind, "rowmajor", points)
        expected = [old_baseline.range_query(r) for r in rects]
        seen_batches = []

        def on_batch(done, total):
            seen_batches.append((done, total))
            for rect, want in zip(rects, expected):
                got = index.range_query(rect)
                assert got.records == want.records
                assert got.seeks == want.seeks
                assert got.pages_read == want.pages_read

        migrator = OnlineMigrator(batch_size=32, on_batch=on_batch)
        report = migrator.migrate(index, make_curve("onion", SIDE, 2))
        assert report.migrated
        assert len(seen_batches) == report.batches >= 4  # genuinely bounded
        assert seen_batches[-1] == (len(points), len(points))
        fresh = build(kind, "onion", points)
        assert_identical(index, fresh, rects)

    @pytest.mark.parametrize("buffer_pages", [0, 256])
    def test_concurrent_readers_always_get_correct_records(self, buffer_pages):
        """Threads hammering range_query across the cutover never see junk.

        With ``buffer_pages`` the cutover's pool invalidation must also
        serialize with in-flight pool reads (the shared I/O lock rule).
        """
        points = distinct_points(200, seed=27)
        index = build(
            "sharded", "rowmajor", points, num_shards=4,
            **({"buffer_pages": buffer_pages} if buffer_pages else {}),
        )
        rect = Rect((2, 2), (11, 11))
        want = sorted(
            (r.point, r.payload)
            for r in build("sharded", "rowmajor", points).range_query(rect).records
        )
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                got = sorted(
                    (r.point, r.payload) for r in index.range_query(rect).records
                )
                if got != want:
                    failures.append(got)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(3):
                index.migrate_to(make_curve("onion", SIDE, 2), batch_size=16)
                index.migrate_to(make_curve("rowmajor", SIDE, 2), batch_size=16)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures


class TestWriteContention:
    """Writes racing the re-key pass force a retry, never a loss."""

    @pytest.mark.parametrize("kind", ["single", "sharded"])
    def test_insert_mid_migration_retries_and_survives(self, kind):
        points = distinct_points(100, seed=31)
        index = build(kind, "rowmajor", points)
        inserted = []

        def on_batch(done, total):
            # One racing write on the first attempt only.
            if not inserted:
                index.insert((0, 0), payload="late")
                inserted.append(True)

        migrator = OnlineMigrator(batch_size=64, on_batch=on_batch)
        report = migrator.migrate(index, make_curve("onion", SIDE, 2))
        assert report.migrated
        assert report.attempts > 1
        assert report.records == len(points) + 1
        assert any(
            r.payload == "late" for r in index.range_query(Rect((0, 0), (0, 0))).records
        )

    def test_concurrent_writers_never_key_under_a_stale_curve(self):
        """Inserts racing cutovers must land under the post-cutover curve.

        The regression: a key computed under the outgoing curve outside
        the lock, appended after the cutover swapped the curve, would be
        counted by ``len`` but invisible to every query — silent loss.
        """
        points = distinct_points(120, seed=41)
        index = build("sharded", "rowmajor", points, num_shards=4)
        errors = []
        inserted = []

        def writer(tid):
            try:
                for i in range(40):
                    point = (tid, i % SIDE)
                    index.insert(point, payload=f"w{tid}-{i}")
                    inserted.append((point, f"w{tid}-{i}"))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(3)]
        for t in threads:
            t.start()
        for _ in range(4):
            index.migrate_to(make_curve("onion", SIDE, 2), batch_size=16)
            index.migrate_to(make_curve("rowmajor", SIDE, 2), batch_size=16)
        for t in threads:
            t.join()
        assert not errors
        assert len(index) == len(points) + len(inserted)
        for point, payload in inserted:
            assert any(
                r.payload == payload for r in index.point_query(point)
            ), f"record {payload} at {point} lost"
        rect = Rect((0, 0), (SIDE - 1, SIDE - 1))
        assert len(index.range_query(rect).records) == len(index)

    def test_sustained_contention_falls_back_to_locked_pass(self):
        points = distinct_points(80, seed=37)
        index = build("single", "rowmajor", points)
        state = {"i": 0}

        def on_batch(done, total):
            # Dirty the version on every optimistic pass; the final
            # lock-held pass (a no-op lock for the single index, but the
            # snapshot/re-key/cutover run back-to-back with no hook in
            # between able to observe a half-installed state) still lands.
            state["i"] += 1
            index.insert((state["i"] % 16, 0), payload=f"w{state['i']}")

        migrator = OnlineMigrator(batch_size=1000, max_attempts=3, on_batch=on_batch)
        report = migrator.migrate(index, make_curve("onion", SIDE, 2))
        assert report.migrated
        assert report.attempts == 3


class TestMigrationGuards:
    def test_same_curve_is_a_noop(self):
        index = build("single", "onion", distinct_points(40))
        report = index.migrate_to(make_curve("onion", SIDE, 2))
        assert not report.migrated
        assert report.records == 0
        assert "skipped" in report.render()

    def test_universe_mismatch_rejected(self):
        index = build("single", "onion", distinct_points(40))
        with pytest.raises(InvalidQueryError):
            index.migrate_to(make_curve("onion", 8, 2))
        with pytest.raises(InvalidQueryError):
            index.migrate_to(make_curve("onion", SIDE, 3))

    def test_empty_index_migrates(self):
        index = SFCIndex(make_curve("rowmajor", SIDE, 2), page_capacity=4)
        report = index.migrate_to(make_curve("onion", SIDE, 2))
        assert report.migrated
        assert report.records == 0
        assert index.range_query(Rect((0, 0), (3, 3))).records == []

    def test_invalid_parameters(self):
        with pytest.raises(InvalidQueryError):
            OnlineMigrator(batch_size=0)
        with pytest.raises(InvalidQueryError):
            OnlineMigrator(max_attempts=0)

    def test_report_render_mentions_curves(self):
        index = build("single", "rowmajor", distinct_points(30))
        report = index.migrate_to(make_curve("onion", SIDE, 2))
        text = report.render()
        assert "rowmajor" in text.lower() or "RowMajor" in text
        assert "onion" in text.lower() or "Onion" in text
