"""DriftDetector: pacing, regret verdicts, incremental re-scoring."""

import pytest

from repro.adaptive import DriftDetector, WorkloadRecorder
from repro.curves import make_curve
from repro.errors import InvalidQueryError

SIDE = 16


@pytest.fixture
def candidates():
    return [make_curve(name, SIDE, 2) for name in ("rowmajor", "onion", "hilbert")]


def feed(recorder, shape, n):
    for _ in range(n):
        recorder.record_executed(shape, seeks=1, pages=1)


class TestVerdicts:
    def test_row_workload_keeps_rowmajor(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (SIDE, 1), 20)
        detector = DriftDetector(candidates, regret_threshold=0.1)
        report = detector.check(recorder, make_curve("rowmajor", SIDE, 2))
        assert not report.drifted
        assert report.best.curve.name == "rowmajor"
        assert report.regret == pytest.approx(0.0)

    def test_cube_workload_flags_rowmajor(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (10, 10), 20)
        detector = DriftDetector(candidates, regret_threshold=0.1)
        report = detector.check(recorder, make_curve("rowmajor", SIDE, 2))
        assert report.drifted
        assert report.best.curve.name == "onion"
        assert report.regret > 0.1
        assert report.incumbent.expected_seeks == pytest.approx(
            report.best.expected_seeks * (1 + report.regret)
        )

    def test_threshold_suppresses_small_regret(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (10, 10), 20)
        detector = DriftDetector(candidates, regret_threshold=100.0)
        report = detector.check(recorder, make_curve("rowmajor", SIDE, 2))
        assert not report.drifted  # regret real, but below the huge threshold
        assert report.regret > 0

    def test_decayed_mix_shifts_the_verdict(self, candidates):
        """Same event counts; decay makes the recent cubes dominate."""
        recorder = WorkloadRecorder(half_life=4.0)
        feed(recorder, (SIDE, 1), 30)
        feed(recorder, (10, 10), 30)
        detector = DriftDetector(candidates, regret_threshold=0.1)
        report = detector.check(recorder, make_curve("rowmajor", SIDE, 2))
        assert report.drifted

    def test_incumbent_outside_candidates_is_scored(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (4, 4), 10)
        detector = DriftDetector(candidates, regret_threshold=0.05)
        report = detector.check(recorder, make_curve("zorder", SIDE, 2))
        assert report.incumbent.curve.name == "zorder"
        assert any(s.curve.name == "zorder" for s in report.scores)

    def test_render_mentions_curves_and_verdict(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (10, 10), 20)
        detector = DriftDetector(candidates)
        report = detector.check(recorder, make_curve("rowmajor", SIDE, 2))
        text = report.render()
        assert "DRIFT" in text
        assert "incumbent" in text
        assert "rowmajor" in text


class TestPacing:
    def test_waits_for_min_observations(self, candidates):
        recorder = WorkloadRecorder()
        detector = DriftDetector(candidates, min_observations=10, check_interval=1)
        feed(recorder, (4, 4), 9)
        assert not detector.should_check(recorder)
        feed(recorder, (4, 4), 1)
        assert detector.should_check(recorder)

    def test_interval_between_checks(self, candidates):
        recorder = WorkloadRecorder()
        detector = DriftDetector(candidates, min_observations=1, check_interval=5)
        feed(recorder, (4, 4), 5)
        assert detector.should_check(recorder)
        detector.check(recorder, candidates[0])
        assert not detector.should_check(recorder)
        feed(recorder, (4, 4), 4)
        assert not detector.should_check(recorder)
        feed(recorder, (4, 4), 1)
        assert detector.should_check(recorder)

    def test_recorder_clear_resets_pacing(self, candidates):
        recorder = WorkloadRecorder()
        detector = DriftDetector(candidates, min_observations=2, check_interval=2)
        feed(recorder, (4, 4), 4)
        detector.check(recorder, candidates[0])
        recorder.clear()
        feed(recorder, (4, 4), 2)
        assert detector.should_check(recorder)


class TestIncrementalScoring:
    def test_cache_fills_once_then_reuses(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (4, 4), 10)
        feed(recorder, (8, 2), 10)
        detector = DriftDetector(candidates, min_observations=1, check_interval=1)
        incumbent = candidates[0]
        detector.check(recorder, incumbent)
        filled = detector.cache_size
        assert filled == len(candidates) * 2  # every (curve, shape) pair
        feed(recorder, (4, 4), 50)  # same shapes, new weights
        detector.check(recorder, incumbent)
        assert detector.cache_size == filled  # nothing recomputed
        feed(recorder, (2, 6), 10)  # a genuinely new shape
        detector.check(recorder, incumbent)
        assert detector.cache_size == filled + len(candidates)

    def test_cached_rescore_matches_fresh_detector(self, candidates):
        recorder = WorkloadRecorder()
        feed(recorder, (4, 4), 5)
        warm = DriftDetector(candidates)
        warm.check(recorder, candidates[0])
        feed(recorder, (10, 10), 40)
        cold = DriftDetector(candidates)
        a = warm.check(recorder, candidates[0])
        b = cold.check(recorder, candidates[0])
        assert a.drifted == b.drifted
        assert a.regret == pytest.approx(b.regret)


class TestGuards:
    def test_empty_candidates(self):
        with pytest.raises(InvalidQueryError):
            DriftDetector([])

    def test_bad_parameters(self, candidates):
        with pytest.raises(InvalidQueryError):
            DriftDetector(candidates, regret_threshold=-0.1)
        with pytest.raises(InvalidQueryError):
            DriftDetector(candidates, min_observations=0)
        with pytest.raises(InvalidQueryError):
            DriftDetector(candidates, check_interval=0)

    def test_check_with_no_observations(self, candidates):
        detector = DriftDetector(candidates)
        with pytest.raises(InvalidQueryError):
            detector.check(WorkloadRecorder(), candidates[0])
