"""WorkloadRecorder under concurrent record/clear/read pressure.

The recorder is the one adaptive component serving threads write into
on every query, so it must tolerate interleaved ``record_executed``,
``clear`` and histogram reads without corrupting its bounded state:
weights stay non-negative and finite, the ring never exceeds its
window, counters never go backwards, and no reader ever observes a
half-applied update (a RuntimeError from a dict mutated mid-iteration
would be the classic symptom).
"""

from __future__ import annotations

import math
import threading

from repro.adaptive import WorkloadRecorder

SHAPES = [(8, 1), (1, 8), (4, 4), (2, 6)]


def _run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_concurrent_record_executed_keeps_totals():
    recorder = WorkloadRecorder(window=64)
    n, writers = 800, 6

    def write(worker):
        for i in range(n):
            shape = SHAPES[(worker + i) % len(SHAPES)]
            recorder.record_executed(shape, seeks=1 + i % 3, pages=2, records=4)

    _run_threads([lambda w=w: write(w) for w in range(writers)])

    assert recorder.executed_events == n * writers
    assert len(recorder.observations()) == 64  # window bound holds
    histogram = recorder.histogram()
    assert set(histogram) <= set(SHAPES)
    assert math.isclose(sum(histogram.values()), 1.0, rel_tol=1e-9)
    for shape in histogram:
        mean = recorder.mean_realized_seeks(shape)
        assert mean is not None and 1.0 <= mean <= 3.0


def test_concurrent_record_and_clear_never_corrupts():
    recorder = WorkloadRecorder(window=32)
    stop = threading.Event()
    errors = []

    def write():
        i = 0
        while not stop.is_set():
            recorder.record_executed(SHAPES[i % len(SHAPES)], seeks=1, pages=1)
            i += 1

    def wipe():
        for _ in range(200):
            recorder.clear()

    def read():
        try:
            while not stop.is_set():
                histogram = recorder.histogram()
                total = sum(histogram.values())
                assert total == 0.0 or math.isclose(total, 1.0, rel_tol=1e-9)
                assert all(w >= 0.0 for w in histogram.values())
                assert len(recorder.observations()) <= 32
                assert recorder.executed_events >= 0
        except Exception as exc:  # surfaced after join; threads can't fail tests
            errors.append(exc)

    writers = [write, write, wipe, read, read]
    threads = [threading.Thread(target=w) for w in writers]
    for t in threads:
        t.start()
    threads[2].join()  # let the clears finish under live write/read load
    stop.set()
    for t in threads:
        t.join()
    assert errors == []
    # A final clear from a quiescent state fully resets the recorder.
    recorder.clear()
    assert recorder.executed_events == 0
    assert recorder.observations() == ()
    assert recorder.histogram() == {}


def test_concurrent_renormalization_stays_finite():
    """Hammer one shape so the decay scale crosses its renormalization
    limit while other threads read — weights must stay finite."""
    recorder = WorkloadRecorder(window=16, half_life=2.0)
    n, writers = 3000, 4

    def write():
        for _ in range(n):
            recorder.record_executed((4, 4), seeks=1, pages=1)

    def read():
        for _ in range(300):
            for weight in recorder.histogram().values():
                assert math.isfinite(weight)
                assert weight >= 0.0

    _run_threads([write] * writers + [read] * 2)
    assert recorder.executed_events == n * writers
    histogram = recorder.histogram()
    assert set(histogram) == {(4, 4)}
    assert math.isclose(sum(histogram.values()), 1.0, rel_tol=1e-9)
