"""WorkloadRecorder: ring buffer, decayed histogram, thread safety, hooks."""

import threading

import pytest

from repro.adaptive import WorkloadRecorder
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex


def record_n(recorder, shape, n, seeks=1):
    for _ in range(n):
        recorder.record_executed(shape, seeks=seeks, pages=seeks)


class TestRingBuffer:
    def test_bounded_by_window_oldest_dropped(self):
        recorder = WorkloadRecorder(window=4)
        for i in range(10):
            recorder.record_executed((i, 1), seeks=i, pages=i)
        observations = recorder.observations()
        assert len(observations) == 4
        assert [o.shape for o in observations] == [(6, 1), (7, 1), (8, 1), (9, 1)]
        assert recorder.executed_events == 10  # the counter never truncates

    def test_observation_fields(self):
        recorder = WorkloadRecorder()
        recorder.record_executed(
            (4, 4), seeks=3, pages=7, records=12, over_read=2, cold_misses=5
        )
        (obs,) = recorder.observations()
        assert obs.shape == (4, 4)
        assert (obs.seeks, obs.pages, obs.records) == (3, 7, 12)
        assert (obs.over_read, obs.cold_misses) == (2, 5)

    def test_cold_misses_default_none(self):
        recorder = WorkloadRecorder()
        recorder.record_executed((2, 2), seeks=1, pages=1)
        assert recorder.observations()[0].cold_misses is None


class TestHistogram:
    def test_normalized(self):
        recorder = WorkloadRecorder(half_life=None)
        record_n(recorder, (8, 1), 3)
        record_n(recorder, (4, 4), 1)
        histogram = recorder.histogram()
        assert sum(histogram.values()) == pytest.approx(1.0)
        assert histogram[(8, 1)] == pytest.approx(0.75)
        assert histogram[(4, 4)] == pytest.approx(0.25)

    def test_empty_when_idle(self):
        assert WorkloadRecorder().histogram() == {}

    def test_decay_follows_drift(self):
        """Equal counts, but the newer shape carries more weight."""
        recorder = WorkloadRecorder(half_life=4.0)
        record_n(recorder, (8, 1), 20)
        record_n(recorder, (4, 4), 20)
        histogram = recorder.histogram()
        assert histogram[(4, 4)] > 0.9 > histogram[(8, 1)]

    def test_half_life_halves_weight(self):
        """An event half_life events older weighs exactly half."""
        recorder = WorkloadRecorder(half_life=10.0)
        recorder.record_executed((1, 1), seeks=1, pages=1)
        record_n(recorder, (3, 3), 9)  # filler advancing the clock
        recorder.record_executed((2, 2), seeks=1, pages=1)
        histogram = recorder.histogram()
        assert histogram[(2, 2)] / histogram[(1, 1)] == pytest.approx(2.0, rel=1e-9)

    def test_scale_renormalization_is_lossless(self):
        """Many events overflow the scale; ratios survive renormalization."""
        recorder = WorkloadRecorder(half_life=2.0)  # scale grows fast
        for i in range(500):
            recorder.record_executed((1, 1) if i % 2 else (2, 2), seeks=1, pages=1)
        histogram = recorder.histogram()
        assert sum(histogram.values()) == pytest.approx(1.0)
        # Alternating shapes with decay: the ratio is exactly 2**(1/2).
        assert histogram[(1, 1)] / histogram[(2, 2)] == pytest.approx(
            2 ** 0.5, rel=1e-6
        )

    def test_clear_resets_everything(self):
        recorder = WorkloadRecorder()
        record_n(recorder, (3, 3), 5)
        recorder.clear()
        assert recorder.histogram() == {}
        assert recorder.executed_events == 0
        assert recorder.observations() == ()


class TestBoundedTelemetry:
    def test_tracked_shapes_stay_bounded(self):
        from repro.adaptive.recorder import _MAX_TRACKED_SHAPES

        recorder = WorkloadRecorder(window=4, half_life=None)
        for i in range(_MAX_TRACKED_SHAPES + 50):
            recorder.record_executed((i + 1, 1), seeks=1, pages=1)
        assert len(recorder.shapes()) <= _MAX_TRACKED_SHAPES
        assert recorder.executed_events == _MAX_TRACKED_SHAPES + 50
        # The newest shape survives; some oldest were evicted.
        assert (_MAX_TRACKED_SHAPES + 50, 1) in recorder.shapes()
        assert recorder.mean_realized_seeks((_MAX_TRACKED_SHAPES + 50, 1)) == 1.0


class TestCalibration:
    def test_mean_realized_vs_estimated(self):
        recorder = WorkloadRecorder()
        recorder.record_executed((4, 4), seeks=3, pages=5)
        recorder.record_executed((4, 4), seeks=5, pages=7)
        assert recorder.mean_realized_seeks((4, 4)) == pytest.approx(4.0)
        assert recorder.mean_realized_seeks((9, 9)) is None
        assert recorder.mean_estimated_seeks((4, 4)) is None  # never planned


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(InvalidQueryError):
            WorkloadRecorder(window=0)

    def test_bad_half_life(self):
        with pytest.raises(InvalidQueryError):
            WorkloadRecorder(half_life=0)


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        recorder = WorkloadRecorder(window=64, half_life=16.0)
        threads = 8
        per_thread = 500

        def hammer(i):
            for _ in range(per_thread):
                recorder.record_executed((i + 1, 1), seeks=1, pages=1)
                recorder.histogram()

        workers = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert recorder.executed_events == threads * per_thread
        assert sum(recorder.histogram().values()) == pytest.approx(1.0)
        assert len(recorder.observations()) == 64


class TestIndexHooks:
    """The planner and both executors report without being asked."""

    def test_single_index_reports_planned_and_executed(self):
        recorder = WorkloadRecorder()
        index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4, recorder=recorder)
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        rect = Rect((1, 1), (4, 4))
        result = index.range_query(rect)
        assert recorder.planned_events == 1
        assert recorder.executed_events == 1
        (obs,) = recorder.observations()
        assert obs.shape == (4, 4)
        assert obs.seeks == result.seeks
        assert obs.pages == result.pages_read
        assert obs.records == len(result.records)
        # A cache hit skips the planner but the executor still reports.
        index.range_query(rect)
        assert recorder.planned_events == 1
        assert recorder.executed_events == 2
        assert recorder.mean_estimated_seeks((4, 4)) is not None

    def test_sharded_index_reports_executed(self):
        recorder = WorkloadRecorder()
        index = ShardedSFCIndex(
            make_curve("onion", 8, 2), num_shards=4, page_capacity=4,
            recorder=recorder,
        )
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        batch = index.range_query_batch([Rect((0, 0), (3, 3)), Rect((2, 2), (6, 6))])
        assert recorder.executed_events == 2
        assert sum(o.seeks for o in recorder.observations()) == batch.total_seeks

    def test_buffer_pool_cold_misses_reported(self):
        recorder = WorkloadRecorder()
        index = SFCIndex(
            make_curve("onion", 8, 2), page_capacity=4, buffer_pages=32,
            recorder=recorder,
        )
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        rect = Rect((1, 1), (5, 5))
        index.range_query(rect)
        cold_first = recorder.observations()[-1].cold_misses
        assert cold_first is not None and cold_first > 0
        index.range_query(rect)  # warm: every page resident
        assert recorder.observations()[-1].cold_misses == 0

    def test_sharded_buffer_pool_cold_misses(self):
        recorder = WorkloadRecorder()
        index = ShardedSFCIndex(
            make_curve("onion", 8, 2), num_shards=2, page_capacity=4,
            buffer_pages=32, recorder=recorder,
        )
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        rect = Rect((1, 1), (5, 5))
        index.range_query(rect)
        assert recorder.observations()[-1].cold_misses > 0
        index.range_query(rect)
        assert recorder.observations()[-1].cold_misses == 0
