"""Key-run decomposition: exact coverage for every curve type."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clustering import clustering_number_exhaustive
from repro.core.runs import query_runs
from repro.curves import make_curve
from repro.errors import InvalidQueryError
from repro.geometry import Rect


def _covered_keys(runs):
    covered = set()
    for start, end in runs:
        assert start <= end
        chunk = set(range(start, end + 1))
        assert not chunk & covered, "runs overlap"
        covered |= chunk
    return covered


class TestRunsExactness:
    def test_runs_cover_exactly_the_query(self, small_curve_2d, rng):
        curve = small_curve_2d
        for _ in range(25):
            lo = rng.integers(0, curve.side, size=2)
            hi = np.minimum(lo + rng.integers(0, 7, size=2), curve.side - 1)
            rect = Rect(tuple(lo), tuple(hi))
            runs = query_runs(curve, rect)
            expected = {int(k) for k in curve.index_many(rect.cells_array())}
            assert _covered_keys(runs) == expected

    def test_run_count_equals_clustering_number(self, small_curve_2d, rng):
        curve = small_curve_2d
        for _ in range(25):
            lo = rng.integers(0, curve.side, size=2)
            hi = np.minimum(lo + rng.integers(0, 7, size=2), curve.side - 1)
            rect = Rect(tuple(lo), tuple(hi))
            assert len(query_runs(curve, rect)) == clustering_number_exhaustive(
                curve, rect
            )

    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "snake"])
    def test_3d_runs(self, name, rng):
        curve = make_curve(name, 8, 3)
        for _ in range(15):
            lo = rng.integers(0, 8, size=3)
            hi = np.minimum(lo + rng.integers(0, 4, size=3), 7)
            rect = Rect(tuple(lo), tuple(hi))
            runs = query_runs(curve, rect)
            expected = {int(k) for k in curve.index_many(rect.cells_array())}
            assert _covered_keys(runs) == expected

    @given(st.integers(0, 2**31))
    def test_onion3d_runs_property(self, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve("onion", 8, 3)
        lo = rng.integers(0, 8, size=3)
        hi = np.minimum(lo + rng.integers(0, 6, size=3), 7)
        rect = Rect(tuple(lo), tuple(hi))
        runs = query_runs(curve, rect)
        expected = {int(k) for k in curve.index_many(rect.cells_array())}
        assert _covered_keys(runs) == expected

    def test_runs_are_sorted(self, small_curve_2d):
        rect = Rect((2, 3), (9, 11))
        runs = query_runs(small_curve_2d, rect)
        assert runs == sorted(runs)

    def test_full_universe_single_run(self, small_curve_2d):
        side = small_curve_2d.side
        runs = query_runs(small_curve_2d, Rect((0, 0), (side - 1, side - 1)))
        assert runs == [(0, small_curve_2d.size - 1)]

    def test_rejects_oversized_rect(self):
        with pytest.raises(InvalidQueryError):
            query_runs(make_curve("onion", 8, 2), Rect((0, 0), (8, 0)))
