"""Translation-sweep kernel: exactness against brute force, everywhere.

The acceptance property of :mod:`repro.core.sweep`: the per-placement
grid equals :func:`repro.core.clustering.clustering_number` evaluated on
**every** placement — for all registered curves (continuous, sparse-jump,
prefix-contiguous, row-major with its wrap jumps), dims 2 and 3, even and
odd sides.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import clustering_number
from repro.core.sweep import (
    DisplacementStencil,
    clear_stencil_cache,
    get_stencil,
    sweep_average_clustering,
    sweep_clustering_grid,
)
from repro.curves import curve_names, make_curve
from repro.errors import InvalidQueryError, ReproError
from repro.geometry import all_translations


def brute_grid(curve, lengths):
    extents = tuple(curve.side - l + 1 for l in lengths)
    out = np.zeros(extents, dtype=np.int64)
    for q in all_translations(curve.side, lengths):
        out[q.lo] = clustering_number(curve, q)
    return out


def _registered_cases():
    """Every registered curve at even and odd sides, dims 2 and 3.

    Curves constrain their sides (powers of two, powers of three, even
    sides); invalid (name, side, dim) combos are skipped at build time,
    so every curve is exercised at whichever of the sides it supports.
    """
    cases = []
    for name in curve_names():
        for dim in (2, 3):
            for side in (4, 5, 8, 9):
                try:
                    curve = make_curve(name, side, dim)
                except ReproError:
                    continue
                if curve.size > 1000:
                    continue  # keep the brute-force side manageable
                cases.append(pytest.param(curve, id=f"{name}-{side}-{dim}d"))
    return cases


def _window_shapes(curve):
    side, dim = curve.side, curve.dim
    shapes = {
        (1,) * dim,
        (side,) * dim,
        (2,) * dim,
        tuple(min(side, 2 + a) for a in range(dim)),
        (side,) + (1,) * (dim - 1),
        (max(1, side - 1),) * dim,
    }
    return sorted(shapes)


class TestExactness:
    @pytest.mark.parametrize("curve", _registered_cases())
    def test_matches_brute_force_everywhere(self, curve):
        for lengths in _window_shapes(curve):
            got = sweep_clustering_grid(curve, lengths)
            want = brute_grid(curve, lengths)
            assert got.shape == want.shape
            assert (got == want).all(), (curve, lengths)

    @given(
        name=st.sampled_from(["onion", "hilbert", "zorder", "gray", "snake"]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_windows_2d(self, name, data):
        curve = make_curve(name, 8, 2)
        lengths = tuple(
            data.draw(st.integers(1, 8), label=f"l{a}") for a in range(2)
        )
        got = sweep_clustering_grid(curve, lengths)
        assert (got == brute_grid(curve, lengths)).all()

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_windows_3d_sparse_jumps(self, data):
        """The 3-d onion exercises the per-cell jump fallback."""
        curve = make_curve("onion", 6, 3)
        lengths = tuple(
            data.draw(st.integers(1, 6), label=f"l{a}") for a in range(3)
        )
        got = sweep_clustering_grid(curve, lengths)
        assert (got == brute_grid(curve, lengths)).all()

    def test_odd_side_continuous_curve(self):
        curve = make_curve("onion", 7, 2)
        for lengths in [(3, 5), (7, 2), (6, 6)]:
            assert (
                sweep_clustering_grid(curve, lengths) == brute_grid(curve, lengths)
            ).all()

    def test_average_equals_grid_mean(self):
        curve = make_curve("hilbert", 16, 2)
        grid = sweep_clustering_grid(curve, (5, 9))
        assert sweep_average_clustering(curve, (5, 9)) == pytest.approx(
            grid.mean()
        )

    def test_stencil_reused_across_window_sizes(self):
        clear_stencil_cache()
        curve = make_curve("onion", 8, 2)
        stencil = get_stencil(curve)
        for window in [(2, 2), (3, 5), (8, 8)]:
            sweep_average_clustering(curve, window)
        assert get_stencil(curve) is stencil  # one build served all sweeps


class TestStencil:
    def test_continuous_curve_has_unit_displacements_only(self):
        stencil = get_stencil(make_curve("hilbert", 8, 2))
        assert stencil.unit_step_fraction == 1.0
        for d, _ in stencil.groups:
            assert sum(abs(c) for c in d) == 1
        assert stencil.num_displacements <= 4

    def test_zorder_has_logarithmically_many_displacements(self):
        stencil = get_stencil(make_curve("zorder", 16, 2))
        assert 2 < stencil.num_displacements <= 2 * 2 * 4  # O(dim·log side)
        assert stencil.unit_step_fraction < 1.0

    def test_groups_cover_every_positive_key_cell_once(self):
        curve = make_curve("gray", 8, 2)
        stencil = get_stencil(curve)
        flats = np.concatenate([flat for _, flat in stencil.groups])
        assert flats.size == curve.size - 1  # every cell except key 0
        assert np.unique(flats).size == flats.size

    def test_cache_returns_same_object(self):
        clear_stencil_cache()
        curve = make_curve("onion", 8, 2)
        assert get_stencil(curve) is get_stencil(curve)
        # equal curves share the cache entry
        assert get_stencil(make_curve("onion", 8, 2)) is get_stencil(curve)

    def test_cache_distinguishes_face_orders(self):
        """Curves whose extra config changes the bijection must not share
        a stencil (regression: curve equality once ignored face_order)."""
        from repro.curves.onion3d import OnionCurve3D

        clear_stencil_cache()
        default = OnionCurve3D(6)
        swapped = OnionCurve3D(6, face_order=(1, 2, 3, 4, 5, 6, 7, 8, 10, 9))
        assert default != swapped
        sweep_clustering_grid(default, (2, 2, 2))  # prime the cache
        got = sweep_clustering_grid(swapped, (2, 2, 2))
        assert (got == brute_grid(swapped, (2, 2, 2))).all()

    def test_cache_eviction(self):
        clear_stencil_cache()
        first = make_curve("onion", 4, 2)
        stencil = get_stencil(first)
        for side in (8, 16, 5, 6, 7):
            get_stencil(make_curve("onion", side, 2))
        assert get_stencil(first) is not stencil  # evicted and rebuilt

    def test_single_cell_universe(self):
        curve = make_curve("rowmajor", 1, 2)
        stencil = get_stencil(curve)
        assert isinstance(stencil, DisplacementStencil)
        assert stencil.groups == ()
        grid = sweep_clustering_grid(curve, (1, 1))
        assert grid.shape == (1, 1) and grid[0, 0] == 1


class TestGuards:
    def test_dim_mismatch(self):
        with pytest.raises(InvalidQueryError):
            sweep_clustering_grid(make_curve("onion", 8, 2), (2, 2, 2))

    def test_oversized_window(self):
        with pytest.raises(InvalidQueryError):
            sweep_clustering_grid(make_curve("onion", 8, 2), (9, 1))

    def test_zero_length_window(self):
        with pytest.raises(InvalidQueryError):
            sweep_clustering_grid(make_curve("onion", 8, 2), (0, 4))
