"""Aligned-block decomposition for prefix-contiguous curves."""

import numpy as np
import pytest

from repro.core.prefix_ranges import block_ranges, merge_ranges
from repro.curves import make_curve
from repro.errors import CurveCapabilityError
from repro.geometry import Rect


class TestBlockRanges:
    @pytest.mark.parametrize("name", ["zorder", "gray"])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_ranges_cover_exactly_the_rect(self, name, dim, rng):
        curve = make_curve(name, 8, dim)
        for _ in range(20):
            lo = rng.integers(0, 8, size=dim)
            hi = np.minimum(lo + rng.integers(0, 5, size=dim), 7)
            rect = Rect(tuple(lo), tuple(hi))
            covered = set()
            for start, size in block_ranges(curve, rect):
                chunk = set(range(start, start + size))
                assert not chunk & covered, "ranges overlap"
                covered |= chunk
            expected = {int(curve.index(c)) for c in rect.cells()}
            assert covered == expected

    def test_whole_universe_is_one_block(self):
        curve = make_curve("zorder", 8, 2)
        ranges = block_ranges(curve, Rect((0, 0), (7, 7)))
        assert ranges == [(0, 64)]

    def test_single_cell(self):
        curve = make_curve("gray", 8, 2)
        ranges = block_ranges(curve, Rect((3, 5), (3, 5)))
        assert len(ranges) == 1
        assert ranges[0][1] == 1
        assert ranges[0][0] == curve.index((3, 5))

    def test_refuses_non_prefix_curves(self):
        onion = make_curve("onion", 8, 2)
        with pytest.raises(CurveCapabilityError):
            block_ranges(onion, Rect((0, 0), (1, 1)))

    def test_block_count_is_subquadratic(self):
        """The decomposition is O(perimeter · log side), far below volume."""
        curve = make_curve("zorder", 64, 2)
        rect = Rect((1, 1), (62, 62))
        ranges = block_ranges(curve, rect)
        assert len(ranges) < rect.volume / 4


class TestMergeRanges:
    def test_adjacent_ranges_merge(self):
        assert merge_ranges([(0, 4), (4, 4), (10, 2)]) == [(0, 8), (10, 2)]

    def test_empty(self):
        assert merge_ranges([]) == []

    def test_merge_count_equals_clustering_number(self, rng):
        from repro.core.clustering import clustering_number_exhaustive

        curve = make_curve("zorder", 16, 2)
        for _ in range(20):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 8, size=2), 15)
            rect = Rect(tuple(lo), tuple(hi))
            merged = merge_ranges(block_ranges(curve, rect))
            assert len(merged) == clustering_number_exhaustive(curve, rect)
