"""Gap-tolerant run merging (the relaxed retrieval model)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.runs import merge_runs_with_gaps, query_runs
from repro.curves import make_curve
from repro.geometry import Rect


class TestMergeRunsWithGaps:
    def test_zero_tolerance_merges_only_adjacent(self):
        runs = [(0, 3), (4, 6), (9, 10)]
        assert merge_runs_with_gaps(runs, 0) == [(0, 6), (9, 10)]

    def test_tolerance_bridges_gaps(self):
        runs = [(0, 3), (6, 8), (20, 21)]
        assert merge_runs_with_gaps(runs, 2) == [(0, 8), (20, 21)]
        assert merge_runs_with_gaps(runs, 11) == [(0, 21)]

    def test_empty(self):
        assert merge_runs_with_gaps([], 5) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            merge_runs_with_gaps([(0, 1)], -1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 20)),
            min_size=1,
            max_size=30,
        ),
        st.integers(0, 50),
    )
    def test_merged_runs_cover_originals(self, raw, tolerance):
        # Build sorted disjoint runs from raw (start, extra) pairs.
        runs = []
        cursor = 0
        for start_offset, extra in raw:
            start = cursor + start_offset + 2
            runs.append((start, start + extra))
            cursor = start + extra
        merged = merge_runs_with_gaps(runs, tolerance)
        # Coverage: every original key is inside some merged run.
        for start, end in runs:
            assert any(ms <= start and end <= me for ms, me in merged)
        # Disjoint and sorted with gaps wider than the tolerance.
        for (_, prev_end), (next_start, _) in zip(merged, merged[1:]):
            assert next_start - prev_end - 1 > tolerance

    def test_fewer_runs_with_more_tolerance(self):
        curve = make_curve("hilbert", 32, 2)
        rect = Rect((2, 2), (28, 29))
        runs = query_runs(curve, rect)
        previous = len(runs)
        for tolerance in (0, 4, 16, 64, 1024):
            merged = merge_runs_with_gaps(runs, tolerance)
            assert len(merged) <= previous
            previous = len(merged)
        assert len(merge_runs_with_gaps(runs, curve.size)) == 1
