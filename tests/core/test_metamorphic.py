"""Metamorphic properties of the clustering number.

These relations must hold for *any* curve and query — they follow from
the definition alone, so they catch subtle counting bugs that
example-based tests miss.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clustering import clustering_number
from repro.core.runs import merge_runs_with_gaps, query_runs
from repro.curves import make_curve
from repro.engine.scatter import clip_runs
from repro.geometry import Rect
from repro.index import average_shards_touched, equal_key_shards, shards_touched

CURVE_NAMES = ["onion", "hilbert", "zorder", "gray", "snake", "rowmajor"]


def _random_rect(rng, side, dim):
    lo = rng.integers(0, side, size=dim)
    hi = np.minimum(lo + rng.integers(0, side, size=dim), side - 1)
    return Rect(tuple(lo), tuple(hi))


def _refine(shards):
    """Split every splittable shard at its midpoint (a strict refinement)."""
    refined = []
    for lo, hi in shards:
        if hi > lo:
            mid = (lo + hi) // 2
            refined.extend([(lo, mid), (mid + 1, hi)])
        else:
            refined.append((lo, hi))
    return refined


class TestSplitSubadditivity:
    """Splitting a query along any axis: c(q) <= c(q1) + c(q2) (a cluster
    of q is cut into at most one piece per half), and
    c(q1) + c(q2) <= c(q) + extra clusters can appear — so also
    c(q) >= max(c(q1), c(q2)) need not hold; only subadditivity does."""

    @given(
        st.sampled_from(CURVE_NAMES),
        st.integers(0, 2**31),
    )
    def test_subadditive_under_axis_splits(self, name, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve(name, 16, 2)
        rect = _random_rect(rng, 16, 2)
        axis = int(rng.integers(0, 2))
        if rect.lo[axis] == rect.hi[axis]:
            return
        cut = int(rng.integers(rect.lo[axis], rect.hi[axis]))
        hi1 = list(rect.hi)
        hi1[axis] = cut
        lo2 = list(rect.lo)
        lo2[axis] = cut + 1
        part1 = Rect(rect.lo, tuple(hi1))
        part2 = Rect(tuple(lo2), rect.hi)
        whole = clustering_number(curve, rect)
        assert whole <= clustering_number(curve, part1) + clustering_number(
            curve, part2
        )


class TestBounds:
    @given(st.sampled_from(CURVE_NAMES), st.integers(0, 2**31))
    def test_at_least_one_at_most_volume(self, name, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve(name, 16, 2)
        rect = _random_rect(rng, 16, 2)
        c = clustering_number(curve, rect)
        assert 1 <= c <= rect.volume

    @given(st.sampled_from(CURVE_NAMES), st.integers(0, 2**31))
    def test_at_most_half_volume_plus_one_rounded(self, name, seed):
        """Clusters alternate with gaps in key order, so a query can have
        at most ceil(|q| … ) — every cluster holds >= 1 cell, and between
        two clusters there is >= 1 missing key, giving c <= (|q|+1)."""
        rng = np.random.default_rng(seed)
        curve = make_curve(name, 16, 2)
        rect = _random_rect(rng, 16, 2)
        assert clustering_number(curve, rect) <= rect.volume

    @pytest.mark.parametrize("name", CURVE_NAMES)
    def test_row_of_continuous_curve_at_most_half_side_plus_one(self, name):
        """For a 1-wide query of length L, clusters <= ceil(L/1) trivially;
        for continuous curves a sharper sanity: c <= L."""
        curve = make_curve(name, 16, 2)
        rect = Rect((0, 7), (15, 7))
        assert clustering_number(curve, rect) <= 16


class TestShardRefinement:
    """Sharding is a *view* over the key runs: cutting the key space into
    finer shards must never change what the query is — clipping the runs
    to any shard map and gluing the clips back together reconstructs the
    runs exactly, so the clustering number is invariant under
    shard-boundary refinement; and finer maps can only *increase* how
    many shards a query touches.  All seeded so failures reproduce."""

    @given(st.sampled_from(CURVE_NAMES), st.integers(0, 2**31))
    def test_clustering_invariant_under_shard_refinement(self, name, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve(name, 16, 2)
        rect = _random_rect(rng, 16, 2)
        runs = query_runs(curve, rect)
        shards = equal_key_shards(curve, int(rng.integers(1, 9)))
        for _ in range(3):  # refine the boundaries, re-glue, compare
            clipped = [run for shard in shards for run in clip_runs(runs, shard)]
            reconstructed = merge_runs_with_gaps(clipped, 0)
            assert reconstructed == runs, (name, seed, shards)
            assert len(reconstructed) == clustering_number(curve, rect)
            shards = _refine(shards)

    @given(st.sampled_from(CURVE_NAMES), st.integers(0, 2**31))
    def test_shards_touched_monotone_under_refinement(self, name, seed):
        rng = np.random.default_rng(seed)
        curve = make_curve(name, 16, 2)
        rect = _random_rect(rng, 16, 2)
        shards = equal_key_shards(curve, int(rng.integers(1, 5)))
        previous = len(shards_touched(curve, rect, shards))
        for _ in range(4):
            shards = _refine(shards)
            touched = len(shards_touched(curve, rect, shards))
            assert touched >= previous, (name, seed, shards)
            previous = touched

    @given(st.integers(0, 2**31))
    def test_average_shards_touched_monotone_in_num_shards(self, seed):
        """Along a refinement chain (1, 2, 4, 8, ... shards) the workload
        mean is non-decreasing: every query's touched set can only grow
        when a shard it intersects is split."""
        rng = np.random.default_rng(seed)
        curve = make_curve("hilbert", 16, 2)
        rects = [_random_rect(rng, 16, 2) for _ in range(10)]
        shards = equal_key_shards(curve, 1)
        averages = []
        for _ in range(4):
            averages.append(average_shards_touched(curve, rects, shards))
            shards = _refine(shards)
        assert averages == sorted(averages), (seed, averages)
        assert averages[0] == 1.0  # one shard: every query touches exactly it


class TestSymmetry:
    @given(st.integers(0, 2**31))
    def test_onion_diagonal_near_symmetry(self, seed):
        """The paper: the onion curve is 'almost symmetric' in the two
        dimensions — transposed queries differ by at most a couple of
        clusters (the missing edge e²_t of each layer breaks exactness)."""
        rng = np.random.default_rng(seed)
        curve = make_curve("onion", 16, 2)
        rect = _random_rect(rng, 16, 2)
        transposed = Rect((rect.lo[1], rect.lo[0]), (rect.hi[1], rect.hi[0]))
        a = clustering_number(curve, rect)
        b = clustering_number(curve, transposed)
        assert abs(a - b) <= 2

    @given(st.integers(0, 2**31))
    def test_translation_changes_clusters_boundedly_for_unit_shift(self, seed):
        """Shifting a query by one cell changes the clustering number by
        at most its cross-section (each cluster gains/loses at its rim)."""
        rng = np.random.default_rng(seed)
        curve = make_curve("hilbert", 16, 2)
        lo = rng.integers(0, 14, size=2)
        hi = np.minimum(lo + rng.integers(0, 8, size=2), 14)
        rect = Rect(tuple(lo), tuple(hi))
        shifted = rect.translate((1, 0))
        a = clustering_number(curve, rect)
        b = clustering_number(curve, shifted)
        cross_section = rect.lengths[1]
        assert abs(a - b) <= 2 * cross_section
