"""Crossing-edge formulas (Lemma 2 and the general pair form)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.edges import (
    gamma_neighbor_lemma2,
    gamma_pair,
    gamma_pair_many,
    placements_containing,
    placements_containing_many,
)
from repro.errors import InvalidQueryError
from repro.geometry import all_translations


def brute_force_gamma(side, lengths, alpha, beta):
    """Count crossing placements by enumeration."""
    return sum(
        q.contains(alpha) != q.contains(beta)
        for q in all_translations(side, lengths)
    )


def brute_force_containing(side, lengths, cell):
    return sum(q.contains(cell) for q in all_translations(side, lengths))


class TestPlacementsContaining:
    @given(
        st.integers(2, 10),
        st.data(),
    )
    def test_matches_brute_force(self, side, data):
        lengths = data.draw(
            st.tuples(st.integers(1, side), st.integers(1, side))
        )
        cell = data.draw(
            st.tuples(st.integers(0, side - 1), st.integers(0, side - 1))
        )
        assert placements_containing(side, lengths, cell) == brute_force_containing(
            side, lengths, cell
        )

    def test_corner_cell_single_placement_for_unit_query(self):
        assert placements_containing(8, (1, 1), (0, 0)) == 1

    def test_center_cell_many_placements(self):
        # 3x3 query, cell (4,4) in 8x8: 3 feasible origins per axis.
        assert placements_containing(8, (3, 3), (4, 4)) == 9

    def test_vectorized_matches_scalar(self, rng):
        side = 12
        lengths = (3, 7)
        cells = rng.integers(0, side, size=(100, 2))
        batch = placements_containing_many(side, lengths, cells)
        assert batch.tolist() == [
            placements_containing(side, lengths, tuple(c)) for c in cells
        ]

    def test_rejects_bad_lengths(self):
        with pytest.raises(InvalidQueryError):
            placements_containing(8, (0, 1), (0, 0))


class TestGammaPair:
    @given(st.integers(2, 9), st.data())
    def test_matches_brute_force_2d(self, side, data):
        lengths = data.draw(st.tuples(st.integers(1, side), st.integers(1, side)))
        alpha = data.draw(st.tuples(st.integers(0, side - 1), st.integers(0, side - 1)))
        beta = data.draw(st.tuples(st.integers(0, side - 1), st.integers(0, side - 1)))
        assert gamma_pair(side, lengths, alpha, beta) == brute_force_gamma(
            side, lengths, alpha, beta
        )

    @given(st.integers(2, 5), st.data())
    def test_matches_brute_force_3d(self, side, data):
        lengths = data.draw(st.tuples(*[st.integers(1, side)] * 3))
        alpha = data.draw(st.tuples(*[st.integers(0, side - 1)] * 3))
        beta = data.draw(st.tuples(*[st.integers(0, side - 1)] * 3))
        assert gamma_pair(side, lengths, alpha, beta) == brute_force_gamma(
            side, lengths, alpha, beta
        )

    def test_identical_endpoints_never_cross(self):
        assert gamma_pair(8, (3, 3), (2, 2), (2, 2)) == 0

    def test_far_jump_counts_both_directions(self):
        # A jump across the whole grid with a 1x1 query: each endpoint is
        # entered once and left once.
        assert gamma_pair(8, (1, 1), (0, 0), (7, 7)) == 2

    def test_vectorized_matches_scalar(self, rng):
        side = 10
        lengths = (4, 7)
        alphas = rng.integers(0, side, size=(200, 2))
        betas = rng.integers(0, side, size=(200, 2))
        batch = gamma_pair_many(side, lengths, alphas, betas)
        assert batch.tolist() == [
            gamma_pair(side, lengths, tuple(a), tuple(b))
            for a, b in zip(alphas, betas)
        ]


class TestLemma2:
    """The paper's neighbor-edge product formula is exact (validated
    against the general form, hence against brute force)."""

    @given(st.sampled_from([6, 8, 10, 12]), st.data())
    def test_agrees_with_general_form_even_sides(self, side, data):
        lengths = data.draw(st.tuples(st.integers(1, side), st.integers(1, side)))
        x = data.draw(st.integers(0, side - 2))
        y = data.draw(st.integers(0, side - 1))
        axis = data.draw(st.integers(0, 1))
        alpha = (x, y) if axis == 0 else (y, x)
        beta = (x + 1, y) if axis == 0 else (y, x + 1)
        assert gamma_neighbor_lemma2(side, lengths, alpha, beta) == gamma_pair(
            side, lengths, alpha, beta
        )

    @given(st.sampled_from([4, 6, 8]), st.data())
    def test_agrees_in_3d(self, side, data):
        lengths = data.draw(st.tuples(*[st.integers(1, side)] * 3))
        cell = list(data.draw(st.tuples(*[st.integers(0, side - 2)] * 3)))
        axis = data.draw(st.integers(0, 2))
        beta = list(cell)
        beta[axis] += 1
        assert gamma_neighbor_lemma2(
            side, lengths, tuple(cell), tuple(beta)
        ) == gamma_pair(side, lengths, tuple(cell), tuple(beta))

    def test_rejects_non_neighbor_edges(self):
        with pytest.raises(InvalidQueryError):
            gamma_neighbor_lemma2(8, (2, 2), (0, 0), (2, 0))
        with pytest.raises(InvalidQueryError):
            gamma_neighbor_lemma2(8, (2, 2), (0, 0), (1, 1))
        with pytest.raises(InvalidQueryError):
            gamma_neighbor_lemma2(8, (2, 2), (1, 1), (1, 1))
