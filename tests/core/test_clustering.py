"""Cluster counting: all three algorithms agree with each other and with
first principles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.clustering import (
    average_clustering,
    boundary_cells_array,
    clustering_distribution,
    clustering_number,
    clustering_number_boundary,
    clustering_number_exhaustive,
    clustering_number_prefix,
)
from repro.curves import make_curve
from repro.errors import CurveCapabilityError, InvalidQueryError
from repro.geometry import Rect


def random_rect(rng, side, dim, max_extent=None):
    max_extent = max_extent or side
    lo = rng.integers(0, side, size=dim)
    extent = rng.integers(0, max_extent, size=dim)
    hi = np.minimum(lo + extent, side - 1)
    return Rect(tuple(lo), tuple(hi))


class TestBoundaryCells:
    def test_single_cell(self):
        cells = boundary_cells_array(Rect((3, 4), (3, 4)))
        assert cells.tolist() == [[3, 4]]

    def test_line_rect(self):
        cells = boundary_cells_array(Rect((1, 2), (1, 6)))
        assert sorted(map(tuple, cells.tolist())) == [(1, y) for y in range(2, 7)]

    def test_2d_ring(self):
        rect = Rect((0, 0), (3, 3))
        cells = set(map(tuple, boundary_cells_array(rect).tolist()))
        expected = {
            (x, y)
            for x in range(4)
            for y in range(4)
            if x in (0, 3) or y in (0, 3)
        }
        assert cells == expected

    def test_3d_shell_no_duplicates(self):
        rect = Rect((1, 1, 1), (4, 5, 6))
        cells = boundary_cells_array(rect)
        tuples = list(map(tuple, cells.tolist()))
        assert len(tuples) == len(set(tuples))
        volume = rect.volume
        interior = 2 * 3 * 4
        assert len(tuples) == volume - interior


class TestMethodAgreement:
    """The exhaustive count is ground truth; every method must match it."""

    def test_all_methods_all_curves(self, small_curve_2d, rng):
        curve = small_curve_2d
        for _ in range(25):
            rect = random_rect(rng, curve.side, 2)
            expected = clustering_number_exhaustive(curve, rect)
            assert clustering_number(curve, rect) == expected
            if curve.is_continuous or curve.has_sparse_discontinuities:
                assert clustering_number_boundary(curve, rect) == expected
            if curve.is_prefix_contiguous:
                assert clustering_number_prefix(curve, rect) == expected

    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "snake"])
    def test_3d_agreement(self, name, rng):
        curve = make_curve(name, 8, 3)
        for _ in range(15):
            rect = random_rect(rng, 8, 3)
            assert clustering_number(curve, rect) == clustering_number_exhaustive(
                curve, rect
            )

    @given(st.integers(0, 2**31))
    def test_boundary_equals_exhaustive_onion3d(self, seed):
        """The sparse-jump path (3-d onion) is the subtlest; hammer it."""
        rng = np.random.default_rng(seed)
        curve = make_curve("onion", 8, 3)
        rect = random_rect(rng, 8, 3)
        assert clustering_number_boundary(curve, rect) == (
            clustering_number_exhaustive(curve, rect)
        )


class TestKnownValues:
    def test_full_universe_is_one_cluster(self, small_curve_2d):
        rect = Rect((0, 0), (15, 15))
        assert clustering_number(small_curve_2d, rect) == 1

    def test_single_cell_is_one_cluster(self, small_curve_2d):
        assert clustering_number(small_curve_2d, Rect((5, 7), (5, 7))) == 1

    def test_figure1_z_vs_hilbert(self):
        """Fig 1's qualitative claim: a query where Z fragments more."""
        hilbert = make_curve("hilbert", 8, 2)
        zorder = make_curve("zorder", 8, 2)
        rect = Rect((0, 0), (0, 3))
        assert clustering_number(hilbert, rect) == 2
        assert clustering_number(zorder, rect) == 4

    def test_figure2_onion_vs_hilbert(self):
        """Fig 2: the 7x7 query at (0,1) — onion 1, Hilbert 5."""
        onion = make_curve("onion", 8, 2)
        hilbert = make_curve("hilbert", 8, 2)
        rect = Rect.from_origin((0, 1), (7, 7))
        assert clustering_number(onion, rect) == 1
        assert clustering_number(hilbert, rect) == 5

    def test_row_query_on_rowmajor(self):
        curve = make_curve("rowmajor", 8, 2)
        assert clustering_number(curve, Rect((0, 3), (7, 3))) == 1
        assert clustering_number(curve, Rect((3, 0), (3, 7))) == 8


class TestDispatch:
    def test_boundary_refused_for_incapable_curves(self):
        zorder = make_curve("zorder", 8, 2)
        with pytest.raises(CurveCapabilityError):
            clustering_number_boundary(zorder, Rect((0, 0), (3, 3)))

    def test_unknown_method_rejected(self):
        onion = make_curve("onion", 8, 2)
        with pytest.raises(InvalidQueryError):
            clustering_number(onion, Rect((0, 0), (1, 1)), method="magic")

    def test_method_override(self):
        onion = make_curve("onion", 8, 2)
        rect = Rect((1, 1), (5, 6))
        assert clustering_number(onion, rect, method="exhaustive") == (
            clustering_number(onion, rect, method="boundary")
        )

    def test_rect_outside_universe_rejected(self):
        onion = make_curve("onion", 8, 2)
        with pytest.raises(InvalidQueryError):
            clustering_number(onion, Rect((0, 0), (8, 8)))


class TestAggregation:
    def test_distribution_and_average(self, rng):
        curve = make_curve("onion", 16, 2)
        rects = [random_rect(rng, 16, 2) for _ in range(10)]
        dist = clustering_distribution(curve, rects)
        assert dist.shape == (10,)
        assert average_clustering(curve, rects) == pytest.approx(dist.mean())

    def test_empty_workload_rejected(self):
        with pytest.raises(InvalidQueryError):
            average_clustering(make_curve("onion", 8, 2), [])
