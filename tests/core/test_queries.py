"""Query generators of Section VII."""

import numpy as np
import pytest

from repro.core.queries import (
    columns_query_set,
    fixed_ratio_rects,
    random_corner_rects,
    random_cubes,
    random_rects,
    rows_query_set,
    translation_query_set,
)
from repro.errors import InvalidQueryError


class TestRandomRects:
    def test_count_and_shape(self, rng):
        rects = random_rects(32, (4, 6), 25, rng)
        assert len(rects) == 25
        assert all(r.lengths == (4, 6) for r in rects)
        assert all(r.fits_in(32) for r in rects)

    def test_rejects_oversized(self, rng):
        with pytest.raises(InvalidQueryError):
            random_rects(8, (9, 1), 5, rng)

    def test_rejects_zero_length(self, rng):
        with pytest.raises(InvalidQueryError):
            random_rects(8, (0, 1), 5, rng)

    def test_full_size_rect_has_single_placement(self, rng):
        rects = random_rects(8, (8, 8), 10, rng)
        assert all(r.lo == (0, 0) for r in rects)

    def test_reproducible(self):
        a = random_rects(32, (3, 3), 10, np.random.default_rng(5))
        b = random_rects(32, (3, 3), 10, np.random.default_rng(5))
        assert a == b

    def test_placements_cover_feasible_region(self):
        """Over many draws, origins span the whole feasible range."""
        rects = random_rects(16, (4, 4), 500, np.random.default_rng(0))
        xs = {r.lo[0] for r in rects}
        assert min(xs) == 0 and max(xs) == 12


class TestRandomCubes:
    def test_cubes_are_cubes(self, rng):
        for r in random_cubes(32, 3, 5, 10, rng):
            assert r.is_cube()
            assert r.lengths == (5, 5, 5)


class TestFixedRatioRects:
    def test_algorithm1_shape(self, rng):
        """Matches Algorithm 1: long side sweeps down in `step` decrements,
        short side is floor(long/ratio)."""
        rects = fixed_ratio_rects(64, 2, 2.0, rng, step=16, per_length=3)
        lengths = {r.lengths for r in rects}
        for l1, l2 in lengths:
            assert l1 == l2 // 2

    def test_infeasible_shapes_skipped(self, rng):
        # ratio < 1 makes l1 > l2; shapes with l1 > side are dropped.
        rects = fixed_ratio_rects(64, 2, 1 / 4, rng, step=16, per_length=2)
        assert all(r.lengths[0] <= 64 for r in rects)
        assert rects, "some shapes must remain feasible"

    def test_extreme_ratio_yields_thin_rects(self, rng):
        """Ratios above the side give l1 = floor(l2/ratio) = 0 → skipped
        until l2 is large enough; surviving shapes are 1-cell thin."""
        rects = fixed_ratio_rects(1024, 2, 1024.0, rng, step=256, per_length=2)
        assert rects
        assert all(r.lengths[0] == r.lengths[1] // 1024 for r in rects)

    def test_3d_extension(self, rng):
        rects = fixed_ratio_rects(32, 3, 2.0, rng, step=8, per_length=2)
        for r in rects:
            l1, l2, l3 = r.lengths
            assert l2 == l3
            assert l1 == l2 // 2

    def test_rejects_non_positive_ratio(self, rng):
        with pytest.raises(InvalidQueryError):
            fixed_ratio_rects(32, 2, 0.0, rng)


class TestRandomCornerRects:
    def test_bounding_boxes(self, rng):
        rects = random_corner_rects(32, 3, 50, rng)
        assert len(rects) == 50
        assert all(r.fits_in(32) for r in rects)

    def test_degenerate_single_cell_possible(self):
        """When both corners coincide the rect is a single cell."""
        rects = random_corner_rects(2, 2, 200, np.random.default_rng(1))
        assert any(r.volume == 1 for r in rects)


class TestRowColumnSets:
    def test_rows(self):
        rows = rows_query_set(8)
        assert len(rows) == 8
        assert all(r.lengths == (8, 1) for r in rows)

    def test_columns(self):
        cols = columns_query_set(8)
        assert len(cols) == 8
        assert all(r.lengths == (1, 8) for r in cols)

    def test_rows_and_columns_disjoint_for_side_over_one(self):
        assert not set(r.lo + r.hi for r in rows_query_set(4)) & set(
            c.lo + c.hi for c in columns_query_set(4)
        )


class TestTranslationQuerySet:
    def test_enumerates_all(self):
        qs = translation_query_set(6, (2, 3))
        assert len(qs) == 5 * 4

    def test_refuses_explosive_sets(self):
        with pytest.raises(InvalidQueryError):
            translation_query_set(4096, (2, 2))
