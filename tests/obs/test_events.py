"""Unit tests for the unified event stream and its control-plane bridges.

The satellite this covers: the adaptive controller's bounded audit log
used to evict silently once it wrapped — an operator reading
``controller.events`` had no way to know decisions were missing.  Both
the controller's private ring and the global :data:`repro.obs.EVENTS`
stream now count every eviction, and every controller decision is
bridged into the global stream.
"""

from __future__ import annotations

import threading

import pytest

from repro.adaptive import AdaptiveController, DriftDetector, WorkloadRecorder
from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex
from repro.obs import EVENTS
from repro.obs.events import EventStream


@pytest.fixture(autouse=True)
def clean_global_stream():
    EVENTS.clear()
    yield
    EVENTS.clear()


# ---------------------------------------------------------------------------
# EventStream mechanics
# ---------------------------------------------------------------------------


def test_emit_and_tail_oldest_first():
    stream = EventStream(capacity=8)
    for i in range(5):
        stream.emit("test", f"event {i}", index=i)
    tail = stream.tail(3)
    assert [e.message for e in tail] == ["event 2", "event 3", "event 4"]
    assert [e.seq for e in tail] == [3, 4, 5]
    assert stream.total_emitted == 5
    assert stream.drops == 0


def test_wrap_counts_drops_instead_of_hiding_them():
    stream = EventStream(capacity=3)
    for i in range(10):
        stream.emit("test", f"event {i}")
    assert len(stream) == 3
    assert stream.drops == 7
    assert stream.total_emitted == 10
    # The survivors are the newest three, sequence numbers intact.
    assert [e.seq for e in stream.tail(10)] == [8, 9, 10]


def test_capacity_validation():
    with pytest.raises(ValueError):
        EventStream(capacity=0)


def test_event_render_is_stable():
    stream = EventStream(capacity=4)
    event = stream.emit("migration", "onion -> hilbert", records=7, batches=2)
    assert event.render() == "#1 [migration] onion -> hilbert  [batches=2 records=7]"


def test_clear_resets_sequence_and_drops():
    stream = EventStream(capacity=2)
    for _ in range(5):
        stream.emit("test", "x")
    stream.clear()
    assert len(stream) == 0
    assert stream.drops == 0
    assert stream.total_emitted == 0


def test_concurrent_emits_do_not_lose_counts():
    stream = EventStream(capacity=16)
    n, threads = 500, 8

    def work():
        for i in range(n):
            stream.emit("test", "spin", i=i)

    workers = [threading.Thread(target=work) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert stream.total_emitted == n * threads
    assert stream.drops == n * threads - 16
    assert len(stream) == 16
    # Sequence numbers are unique and dense.
    seqs = [e.seq for e in stream.tail(16)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 16


# ---------------------------------------------------------------------------
# controller bridge
# ---------------------------------------------------------------------------


def _adaptive_index():
    recorder = WorkloadRecorder()
    index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4, recorder=recorder)
    index.bulk_load([(x, y) for x in range(8) for y in range(8)])
    index.flush()
    return index, recorder


def _row_workload(index, queries=12):
    for origin in range(queries):
        index.range_query(Rect.from_origin((0, origin % 8), (8, 1)))


def test_controller_decisions_bridge_into_global_stream():
    index, _ = _adaptive_index()
    candidates = [make_curve(name, 8, 2) for name in ("onion", "hilbert", "rowmajor")]
    controller = AdaptiveController(
        index,
        candidates,
        detector=DriftDetector(candidates, min_observations=1, check_interval=1),
    )
    _row_workload(index)
    event = controller.check_now()
    kinds = [e.kind for e in EVENTS.tail(50)]
    assert "adaptation" in kinds
    if event.migration is not None and event.migration.migrated:
        assert "migration" in kinds
        adaptation = [e for e in EVENTS.tail(50) if e.kind == "adaptation"][-1]
        assert adaptation.data["migrated"] is True
        assert adaptation.data["best_curve"] == event.report.best.curve.name


def test_controller_audit_log_counts_evictions():
    index, _ = _adaptive_index()
    candidates = [make_curve("onion", 8, 2), make_curve("hilbert", 8, 2)]
    controller = AdaptiveController(
        index,
        candidates,
        detector=DriftDetector(candidates, min_observations=1, check_interval=1),
        auto_migrate=False,
        event_log_size=3,
    )
    _row_workload(index, queries=4)
    for _ in range(8):
        controller.check_now()
    assert len(controller.events) == 3
    # 8 decisions into a 3-slot ring: 5 were evicted — and counted.
    assert controller.events_dropped == 5
    # Nothing was lost from the (much larger) unified stream.
    assert sum(1 for e in EVENTS.tail(50) if e.kind == "adaptation") == 8


def test_checkpoint_and_recovery_emit_events(tmp_path):
    index = SFCIndex(
        make_curve("onion", 8, 2), page_capacity=4, durable_path=tmp_path / "store"
    )
    index.bulk_load([(x, y) for x in range(4) for y in range(4)])
    index.flush()
    index.checkpoint()
    index.durability.close()
    from repro.storage import recover

    store = recover(tmp_path / "store")
    store.durability.close()
    kinds = [e.kind for e in EVENTS.tail(50)]
    assert "checkpoint" in kinds
    assert "recovery" in kinds
