"""Unit tests for the metrics plane: registry, primitives, exposition.

The contracts the instrumentation relies on: a disabled registry is a
near-free no-op, quantiles come from log2 buckets with exact
single-value answers, exposition renders both Prometheus text and JSON,
and — CONTRIBUTING invariant 10 — a metric update must *never* raise
into the hot path it observes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import METRICS, MetricsRegistry, disable_metrics, enable_metrics
from repro.obs.metrics import _bucket_exponent


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def global_metrics():
    """Enable the process-wide registry for a test, then restore."""
    enable_metrics()
    METRICS.reset()
    yield METRICS
    METRICS.reset()
    disable_metrics()


# ---------------------------------------------------------------------------
# counters / gauges
# ---------------------------------------------------------------------------


def test_counter_increments(registry):
    c = registry.counter("repro_test_total", "help")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_noop_when_disabled():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("repro_test_total", "help")
    c.inc(100)
    assert c.value == 0
    registry.enabled = True
    c.inc(2)
    assert c.value == 2


def test_counter_rejects_negative_and_nan(registry):
    c = registry.counter("repro_test_total", "help")
    c.inc(-1)
    c.inc(float("nan"))
    assert c.value == 0
    assert registry.errors == 2  # rejected, counted, never raised


def test_gauge_set_inc_dec(registry):
    g = registry.gauge("repro_test_gauge", "help")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value == 12


def test_register_is_get_or_create(registry):
    a = registry.counter("repro_same_total", "help")
    b = registry.counter("repro_same_total", "help")
    assert a is b
    with pytest.raises(TypeError):
        registry.gauge("repro_same_total", "help")


# ---------------------------------------------------------------------------
# histogram / quantiles
# ---------------------------------------------------------------------------


def test_bucket_exponent_powers_of_two():
    # Exact powers of two land in the *lower* bucket (upper bound 2^e).
    assert _bucket_exponent(1.0) == 0
    assert _bucket_exponent(2.0) == 1
    assert _bucket_exponent(1.5) == 1
    assert _bucket_exponent(0.75) == 0
    assert _bucket_exponent(0.0) == -1074
    assert _bucket_exponent(-3.0) == -1074


def test_histogram_single_value_quantiles_are_exact(registry):
    h = registry.histogram("repro_test_seconds", "help")
    h.observe(0.125)
    snap = h.snapshot()
    assert snap["count"] == 1
    assert snap["p50"] == snap["p99"] == snap["p999"] == 0.125
    assert snap["min"] == snap["max"] == 0.125


def test_histogram_quantiles_bound_by_buckets(registry):
    h = registry.histogram("repro_test_seconds", "help")
    for value in [1.0] * 90 + [100.0] * 10:
        h.observe(value)
    snap = h.snapshot()
    assert snap["count"] == 100
    assert snap["sum"] == pytest.approx(90 + 1000)
    # p50 sits in the 1.0 bucket; its log2 upper bound is exactly 1.0.
    assert snap["p50"] == 1.0
    # p99 reaches the 100.0 bucket: upper bound 128, clamped to max 100.
    assert 100.0 <= snap["p99"] <= 128.0
    assert snap["p99"] == 100.0  # clamped to the observed max


def test_histogram_quantile_monotone(registry):
    h = registry.histogram("repro_test_seconds", "help")
    for i in range(1, 200):
        h.observe(i * 0.001)
    snap = h.snapshot()
    assert snap["p50"] <= snap["p99"] <= snap["p999"] <= snap["max"]
    assert snap["p50"] >= snap["min"]


def test_histogram_noop_when_disabled():
    registry = MetricsRegistry(enabled=False)
    h = registry.histogram("repro_test_seconds", "help")
    h.observe(1.0)
    assert h.snapshot()["count"] == 0


def test_histogram_never_raises_on_garbage(registry):
    h = registry.histogram("repro_test_seconds", "help")
    h.observe(float("nan"))
    h.observe(object())  # type: ignore[arg-type]
    # Garbage is vetted at fold time (any read folds); it must be
    # dropped and tallied, never raised.
    assert h.snapshot()["count"] == 0
    assert registry.errors >= 2


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------


def test_prometheus_exposition(registry):
    registry.counter("repro_seeks_total", "seeks charged").inc(7)
    registry.histogram("repro_latency_seconds", "wall time").observe(0.5)
    text = registry.render_prometheus()
    assert "# HELP repro_seeks_total seeks charged" in text
    assert "# TYPE repro_seeks_total counter" in text
    assert "repro_seeks_total 7" in text
    assert "# TYPE repro_latency_seconds summary" in text
    assert 'repro_latency_seconds{quantile="0.5"} 0.5' in text
    assert "repro_latency_seconds_count 1" in text


def test_json_exposition_round_trips(registry):
    registry.counter("repro_seeks_total", "seeks charged").inc(3)
    registry.gauge("repro_depth", "tree depth").set(2)
    registry.histogram("repro_latency_seconds", "wall time").observe(0.25)
    payload = json.loads(registry.render_json_text())
    assert payload["counters"]["repro_seeks_total"] == 3
    assert payload["gauges"]["repro_depth"] == 2
    assert payload["histograms"]["repro_latency_seconds"]["count"] == 1
    assert payload["histograms"]["repro_latency_seconds"]["p50"] == 0.25


def test_reset_zeroes_everything(registry):
    c = registry.counter("repro_total", "help")
    h = registry.histogram("repro_seconds", "help")
    c.inc(5)
    h.observe(1.0)
    registry.reset()
    assert c.value == 0
    assert h.snapshot()["count"] == 0


# ---------------------------------------------------------------------------
# thread safety
# ---------------------------------------------------------------------------


def test_concurrent_increments_do_not_lose_updates(registry):
    c = registry.counter("repro_total", "help")
    h = registry.histogram("repro_seconds", "help")
    n, threads = 2000, 8

    def work():
        for i in range(n):
            c.inc()
            h.observe(float(i % 7) + 0.5)

    workers = [threading.Thread(target=work) for _ in range(threads)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    assert c.value == n * threads
    assert h.snapshot()["count"] == n * threads


def test_global_registry_picks_up_engine_counters(global_metrics):
    """End-to-end: a query through the front door moves the registry."""
    from repro.api import Query
    from repro.curves import make_curve
    from repro.geometry import Rect
    from repro.index import SFCIndex

    index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4)
    index.bulk_load([(x, y) for x in range(8) for y in range(8)])
    index.flush()
    result = index.execute(Query.rect(Rect((0, 0), (5, 5))))

    seeks = global_metrics.get("repro_disk_seeks_total").value
    sequential = global_metrics.get("repro_disk_sequential_reads_total").value
    assert seeks >= result.seeks
    assert sequential >= result.sequential_reads
    assert global_metrics.get("repro_executor_queries_total").value == 1
    latency = global_metrics.get("repro_query_latency_seconds").snapshot()
    assert latency["count"] == 1
    assert latency["sum"] > 0
