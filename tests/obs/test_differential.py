"""Differential acceptance: traced span attribution ≡ untraced cost.

The tentpole's correctness bar: for a fully drained traced query, the
``kind="io"`` spans' seek/page/over-read attribution must sum *exactly*
to the untraced result's cost fields — across curves, shard counts 1–4
and both execution modes (materialized and streaming).  Tracing is an
observer: it must never change what it observes, and it must never
double-count (per-shard ``kind="shard"`` breakdowns stay out of the
canonical sums).
"""

from __future__ import annotations

import pytest

from repro.api import Query
from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex
from repro.obs import start_trace

CURVES = ["onion", "hilbert", "zorder"]
SHARDS = [1, 2, 3, 4]
SIDE = 16
PAGE_CAPACITY = 8

RECTS = [
    Rect((1, 2), (9, 11)),
    Rect((0, 0), (15, 3)),
    Rect((4, 4), (12, 12)),
    Rect((7, 0), (7, 15)),
]

#: Stores are immutable after flush; share them across parametrizations.
_STORES = {}


def _points(side):
    points = []
    for key in range(side * side):
        if key % 5 == 2:
            continue  # holes make pages span irregular key gaps
        points.append((key % side, key // side))
    return points


def _store(curve_name, shards):
    spec = (curve_name, shards)
    store = _STORES.get(spec)
    if store is None:
        curve = make_curve(curve_name, SIDE, 2)
        if shards == 1:
            store = SFCIndex(curve, page_capacity=PAGE_CAPACITY)
        else:
            store = ShardedSFCIndex(
                curve,
                num_shards=shards,
                page_capacity=PAGE_CAPACITY,
                max_workers=0,
            )
        store.bulk_load(_points(SIDE))
        store.flush()
        _STORES[spec] = store
    return store


@pytest.mark.parametrize("streaming", [False, True], ids=["materialized", "streamed"])
@pytest.mark.parametrize("shards", SHARDS)
@pytest.mark.parametrize("curve_name", CURVES)
def test_traced_io_totals_equal_untraced_cost(curve_name, shards, streaming):
    store = _store(curve_name, shards)
    for rect in RECTS:
        query = Query.rect(rect)

        store.disk.reset_stats()
        if streaming:
            with store.cursor(query) as cursor:
                records = sum(1 for _ in cursor)
                untraced = cursor.stats
        else:
            untraced = store.execute(query)
            records = len(untraced.records)

        store.disk.reset_stats()
        with start_trace("query") as trace:
            if streaming:
                with store.cursor(query) as cursor:
                    traced_records = sum(1 for _ in cursor)
                    traced = cursor.stats
            else:
                traced = store.execute(query)
                traced_records = len(traced.records)

        totals = trace.io_totals()
        assert totals["seeks"] == traced.seeks == untraced.seeks
        assert (
            totals["sequential_reads"]
            == traced.sequential_reads
            == untraced.sequential_reads
        )
        assert totals["over_read"] == traced.over_read == untraced.over_read
        assert totals["pages"] == traced.pages_read == untraced.pages_read
        assert totals["records"] == traced_records == records


@pytest.mark.parametrize("shards", [1, 3])
@pytest.mark.parametrize("curve_name", CURVES)
def test_traced_union_query_matches(curve_name, shards):
    store = _store(curve_name, shards)
    query = Query.union_of([RECTS[0], RECTS[1]]).hint(gap_tolerance=2)

    store.disk.reset_stats()
    untraced = store.execute(query)

    store.disk.reset_stats()
    with start_trace("union") as trace:
        traced = store.execute(query)

    totals = trace.io_totals()
    assert totals["seeks"] == traced.seeks == untraced.seeks
    assert totals["over_read"] == traced.over_read == untraced.over_read
    assert totals["pages"] == traced.pages_read == untraced.pages_read
    assert totals["records"] == len(traced.records) == len(untraced.records)


@pytest.mark.parametrize("shards", [1, 2])
def test_traced_knn_matches(shards):
    """Every kNN expansion runs through the plan/execute path, so the
    io spans under the ``knn`` span sum to the KNNResult's profile."""
    store = _store("onion", shards)

    store.disk.reset_stats()
    with start_trace("knn") as trace:
        result = store.knn((8, 8), 7)

    totals = trace.io_totals()
    assert totals["seeks"] == result.seeks
    assert totals["sequential_reads"] == result.sequential_reads
    assert totals["pages"] == result.pages_read
    # records_scanned counts matched + over-read records per expansion.
    assert totals["records"] + totals["over_read"] == result.records_scanned
    knn_spans = trace.find("knn")
    assert len(knn_spans) == 1
    assert knn_spans[0].attrs["expansions"] == result.expansions
    # One canonical io span per expansion — no double counting.
    io_spans = [s for s in trace.walk() if s.kind == "io"]
    assert len(io_spans) == result.expansions


@pytest.mark.parametrize("shards", [1, 4])
def test_exactly_one_io_span_per_execution(shards):
    store = _store("hilbert", shards)
    with start_trace("one") as trace:
        store.execute(Query.rect(RECTS[0]))
    io_spans = [s for s in trace.walk() if s.kind == "io"]
    assert len(io_spans) == 1
    # The per-shard breakdowns are present but non-canonical.
    if shards > 1:
        shard_spans = [s for s in trace.walk() if s.kind == "shard"]
        assert shard_spans, "sharded execution should attribute per-shard spans"
        assert sum(s.attrs["seeks"] for s in shard_spans) >= trace.io_totals()["seeks"]


def test_tracing_does_not_change_charged_cost():
    """The observer effect check: identical seeks with and without a trace."""
    store = _store("onion", 2)
    query = Query.rect(RECTS[2])
    store.disk.reset_stats()
    bare = store.execute(query)
    store.disk.reset_stats()
    with start_trace("observed"):
        observed = store.execute(query)
    assert (bare.seeks, bare.sequential_reads, bare.over_read) == (
        observed.seeks,
        observed.sequential_reads,
        observed.over_read,
    )
