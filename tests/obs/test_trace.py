"""Unit tests for the tracing plane: span lifecycle, balance, exports.

The load-bearing invariant (CONTRIBUTING invariant 10): every span that
starts ends *exactly once*, on every path — normal drain, early close,
exceptions unwinding through predicates and generators.  A trace with a
live span after the traced operation returned is a leak; a span ended
twice would stamp a bogus duration.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Query
from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex
from repro.obs import NULL_SPAN, current_span, current_trace, open_span, span, start_trace


def _store():
    index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4)
    index.bulk_load([(x, y) for x in range(8) for y in range(8)])
    index.flush()
    return index


def _assert_balanced(trace):
    spans = list(trace.walk())
    assert spans, "a traced operation should have produced spans"
    for s in spans:
        assert s.ended, f"span {s.name!r} ({s.kind}) was never ended"


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


def test_span_outside_trace_is_null():
    assert current_trace() is None
    assert span("anything") is NULL_SPAN
    assert open_span("anything") is NULL_SPAN
    with span("anything") as s:
        assert s is NULL_SPAN
        s.set("ignored", 1)
        s.add("ignored", 2)
    assert NULL_SPAN.attrs == {}


def test_nested_spans_parent_correctly():
    with start_trace("t") as trace:
        with span("outer") as outer:
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
    assert trace.spans == [outer]
    assert outer.children == [inner]
    assert inner.parent is outer
    _assert_balanced(trace)


def test_span_ends_exactly_once_on_exception():
    with pytest.raises(RuntimeError):
        with start_trace("t") as trace:
            with span("boom"):
                raise RuntimeError("unwind")
    (boom,) = trace.find("boom")
    assert boom.ended
    end_at_exit = boom._end
    boom.end()  # idempotent: the first end wins
    assert boom._end == end_at_exit


def test_trace_exit_ends_dangling_spans():
    """An exception unwinding past a span's owner still ends it."""
    with start_trace("t") as trace:
        leaked = span("leaked")
        leaked.__enter__()  # entered, never exited (simulated buggy owner)
    _assert_balanced(trace)


def test_open_span_is_floating():
    with start_trace("t") as trace:
        with span("parent") as parent:
            floating = open_span("floating", kind="io")
            # Floating spans parent under the current span but do NOT
            # become the current span (nothing nests under them).
            assert current_span() is parent
        assert not floating.ended
        floating.end()
        floating.end()  # idempotent
    assert floating.parent is parent
    _assert_balanced(trace)


def test_start_trace_nests_and_restores():
    with start_trace("outer") as outer:
        with span("a"):
            with start_trace("inner") as inner:
                with span("b"):
                    assert current_trace() is inner
            assert current_trace() is outer
    assert [s.name for s in outer.walk()] == ["a"]
    assert [s.name for s in inner.walk()] == ["b"]


# ---------------------------------------------------------------------------
# balance through the real query path
# ---------------------------------------------------------------------------


def test_spans_balance_on_raising_predicate():
    """An exception thrown out of a streamed predicate must not leak
    the PlanStream's floating io span."""
    store = _store()

    def explode(record):
        raise ValueError("predicate boom")

    query = Query.rect(Rect((0, 0), (7, 7))).where(explode)
    with start_trace("t") as trace:
        with pytest.raises(ValueError):
            with store.cursor(query) as cursor:
                list(cursor)
    _assert_balanced(trace)


def test_spans_balance_on_abandoned_cursor():
    """Closing a half-drained cursor ends the stream span exactly once."""
    store = _store()
    with start_trace("t") as trace:
        cursor = store.cursor(Query.rect(Rect((0, 0), (7, 7))))
        next(iter(cursor))
        cursor.close()
        cursor.close()  # double close stays exactly-once
    (stream_span,) = [s for s in trace.walk() if s.name == "stream"]
    assert stream_span.ended
    assert stream_span.attrs["drained"] is False
    _assert_balanced(trace)


def test_spans_balance_on_drained_stream():
    store = _store()
    with start_trace("t") as trace:
        with store.cursor(Query.rect(Rect((2, 2), (5, 5)))) as cursor:
            rows = list(cursor)
    assert rows
    (stream_span,) = [s for s in trace.walk() if s.name == "stream"]
    assert stream_span.attrs["drained"] is True
    _assert_balanced(trace)


def test_spans_balance_on_limited_query():
    store = _store()
    with start_trace("t") as trace:
        result = store.execute(Query.rect(Rect((0, 0), (7, 7))).limit(3))
    assert len(result.rows) == 3
    _assert_balanced(trace)


def test_spans_balance_under_predicate_and_projection():
    store = _store()
    with start_trace("t") as trace:
        store.execute(
            Query.rect(Rect((0, 0), (6, 6)))
            .where(lambda r: r.point[0] % 2 == 0)
            .select(lambda r: r.point)
        )
    _assert_balanced(trace)


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------


def test_to_dict_and_json_round_trip():
    store = _store()
    with start_trace("q") as trace:
        store.execute(Query.rect(Rect((1, 1), (6, 6))))
    payload = json.loads(trace.to_json())
    assert payload["name"] == "q"
    assert payload["io_totals"] == trace.io_totals()
    names = [s["name"] for s in payload["spans"]]
    assert "execute" in names or "stream" in names

    def check(node):
        assert set(node) == {"name", "kind", "duration_s", "attrs", "children"}
        assert node["duration_s"] >= 0
        for child in node["children"]:
            check(child)

    for node in payload["spans"]:
        check(node)


def test_chrome_export_shape():
    store = _store()
    with start_trace("q") as trace:
        store.execute(Query.rect(Rect((1, 1), (6, 6))))
    payload = json.loads(trace.to_chrome_json())
    events = payload["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert {"name", "cat", "pid", "tid", "args"} <= set(event)
    # one chrome event per span
    assert len(events) == sum(1 for _ in trace.walk())


def test_render_mentions_io_totals():
    store = _store()
    with start_trace("q") as trace:
        result = store.execute(Query.rect(Rect((0, 0), (3, 3))))
    text = trace.render()
    assert text.startswith("trace q")
    assert f"seeks={result.seeks}" in text
    assert "io totals:" in text
