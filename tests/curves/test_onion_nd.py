"""The generic n-dimensional onion curve (the paper's future-work extension)."""

import pytest

from repro.curves import OnionCurve2D, OnionCurveND
from repro.errors import InvalidUniverseError
from repro.geometry import boundary_distance


class TestStructure:
    @pytest.mark.parametrize("side,dim", [(2, 2), (5, 2), (8, 2), (4, 3), (5, 3),
                                          (3, 4), (4, 4), (3, 5)])
    def test_bijection(self, side, dim):
        OnionCurveND(side, dim).verify_bijection()

    @pytest.mark.parametrize("side,dim", [(6, 2), (5, 3), (4, 4)])
    def test_layers_are_key_contiguous(self, side, dim):
        """The defining onion property holds in every dimension."""
        curve = OnionCurveND(side, dim)
        previous = 1
        for key in range(curve.size):
            layer = boundary_distance(curve.point(key), side)
            assert layer >= previous
            previous = layer

    def test_rejects_dim_one(self):
        with pytest.raises(InvalidUniverseError):
            OnionCurveND(8, 1)

    def test_starts_at_origin(self):
        assert OnionCurveND(6, 4).point(0) == (0, 0, 0, 0)


class TestFamilyConsistency:
    def test_same_layer_partition_as_2d_onion(self):
        """OnionCurveND(…, 2) and OnionCurve2D order layers identically
        even though the within-layer walk differs."""
        side = 8
        nd = OnionCurveND(side, 2)
        paper = OnionCurve2D(side)
        for x in range(side):
            for y in range(side):
                layer = boundary_distance((x, y), side)
                ring = side - 2 * (layer - 1)
                lo = side * side - ring * ring
                hi = side * side - max(ring - 2, 0) ** 2
                assert lo <= nd.index((x, y)) < hi
                assert lo <= paper.index((x, y)) < hi

    def test_odd_sides_supported(self):
        """Odd sides have a single-cell core layer."""
        curve = OnionCurveND(5, 3)
        assert curve.point(curve.size - 1) == (2, 2, 2)
