"""Unit and property tests for :mod:`repro.curves._bits`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves._bits import (
    MAX_VECTOR_BITS,
    bits_for_side,
    deinterleave,
    deinterleave_many,
    gray_decode,
    gray_decode_many,
    gray_encode,
    gray_encode_many,
    interleave,
    interleave_many,
)
from repro.errors import InvalidUniverseError


class TestBitsForSide:
    @pytest.mark.parametrize("side,expected", [(2, 1), (4, 2), (8, 3), (1024, 10)])
    def test_powers_of_two(self, side, expected):
        assert bits_for_side(side) == expected

    @pytest.mark.parametrize("bad", [0, 3, 6, 100])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(InvalidUniverseError):
            bits_for_side(bad)


class TestInterleave:
    def test_known_2d_values(self):
        # x = fastest-varying axis: bit 0 of coord 0 is key bit 0.
        assert interleave((1, 0), 1) == 1
        assert interleave((0, 1), 1) == 2
        assert interleave((1, 1), 1) == 3
        assert interleave((2, 3), 2) == 0b1110

    def test_3d(self):
        assert interleave((1, 1, 1), 1) == 7
        assert interleave((0, 0, 1), 1) == 4

    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=4),
    )
    def test_roundtrip(self, coords):
        key = interleave(coords, 8)
        assert deinterleave(key, len(coords), 8) == list(coords)

    @given(st.integers(2, 4), st.integers(1, 6), st.data())
    def test_order_preserving_within_block(self, dim, bits, data):
        # Interleaving is a bijection onto [0, 2**(dim*bits)).
        keys = set()
        for _ in range(20):
            coords = data.draw(
                st.lists(st.integers(0, 2**bits - 1), min_size=dim, max_size=dim)
            )
            keys.add(interleave(coords, bits))
        assert all(0 <= k < 2 ** (dim * bits) for k in keys)


class TestGray:
    def test_known_values(self):
        assert [gray_encode(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    @given(st.integers(0, 2**40))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    @given(st.integers(0, 2**30 - 1))
    def test_adjacent_gray_codes_differ_in_one_bit(self, value):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert diff and diff & (diff - 1) == 0


class TestVectorized:
    @given(st.integers(1, 4), st.integers(1, 8), st.integers(0, 2**32))
    def test_interleave_many_matches_scalar(self, dim, bits, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 2**bits, size=(32, dim), dtype=np.int64)
        keys = interleave_many(coords, bits)
        expected = [interleave(tuple(row), bits) for row in coords]
        assert keys.tolist() == expected

    @given(st.integers(1, 4), st.integers(1, 8), st.integers(0, 2**32))
    def test_deinterleave_many_matches_scalar(self, dim, bits, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 2 ** (dim * bits), size=64, dtype=np.int64)
        coords = deinterleave_many(keys, dim, bits)
        expected = [deinterleave(int(k), dim, bits) for k in keys]
        assert coords.tolist() == expected

    def test_gray_many_roundtrip(self):
        values = np.arange(4096, dtype=np.int64)
        assert (gray_decode_many(gray_encode_many(values), 13) == values).all()

    def test_gray_many_matches_scalar(self):
        values = np.arange(1000, dtype=np.int64)
        encoded = gray_encode_many(values)
        assert encoded.tolist() == [gray_encode(int(v)) for v in values]

    def test_width_guard(self):
        with pytest.raises(InvalidUniverseError):
            interleave_many(np.zeros((1, 4), dtype=np.int64), 16)

    def test_interleave_many_shape_check(self):
        with pytest.raises(ValueError):
            interleave_many(np.zeros(4, dtype=np.int64), 2)

    def test_max_vector_bits_constant_sane(self):
        assert 32 <= MAX_VECTOR_BITS <= 63
