"""The Peano curve."""

import numpy as np
import pytest

from repro.curves import PeanoCurve, make_curve
from repro.errors import InvalidUniverseError, OutOfUniverseError


class TestConstruction:
    @pytest.mark.parametrize("bad", [1, 2, 4, 6, 10, 12])
    def test_rejects_non_powers_of_three(self, bad):
        with pytest.raises(InvalidUniverseError):
            PeanoCurve(bad)

    def test_rejects_non_2d(self):
        with pytest.raises(OutOfUniverseError):
            PeanoCurve(9, dim=3)

    def test_registered(self):
        assert isinstance(make_curve("peano", 9, 2), PeanoCurve)

    def test_exponent(self):
        assert PeanoCurve(27).exponent == 3


class TestStructure:
    @pytest.mark.parametrize("side", [3, 9, 27])
    def test_bijection(self, side):
        PeanoCurve(side).verify_bijection()

    @pytest.mark.parametrize("side", [3, 9, 27])
    def test_continuity(self, side):
        """Peano's construction guarantees unit steps; this pins the digit
        logic exactly."""
        PeanoCurve(side).verify_continuity()

    def test_runs_corner_to_corner(self):
        curve = PeanoCurve(9)
        assert curve.first_cell == (0, 0)
        assert curve.last_cell == (8, 8)

    def test_3x3_shape(self):
        """The base motif: x-major serpentine through the 3x3 grid."""
        curve = PeanoCurve(3)
        walk = [curve.point(k) for k in range(9)]
        assert walk == [
            (0, 0), (0, 1), (0, 2),
            (1, 2), (1, 1), (1, 0),
            (2, 0), (2, 1), (2, 2),
        ]

    def test_thirds_are_key_contiguous(self):
        """Each of the nine 3x3 blocks of the 9x9 curve is one key range."""
        curve = PeanoCurve(9)
        ninth = curve.size // 9
        for b in range(9):
            cells = [curve.point(k) for k in range(b * ninth, (b + 1) * ninth)]
            xs = {c[0] // 3 for c in cells}
            ys = {c[1] // 3 for c in cells}
            assert len(xs) == 1 and len(ys) == 1


class TestVectorized:
    @pytest.mark.parametrize("side", [3, 9, 27, 81])
    def test_matches_scalar(self, side):
        curve = PeanoCurve(side)
        rng = np.random.default_rng(side)
        cells = rng.integers(0, side, size=(200, 2))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]
        keys = rng.integers(0, curve.size, size=200)
        assert [tuple(p) for p in curve.point_many(keys).tolist()] == [
            curve.point(int(k)) for k in keys
        ]

    def test_roundtrip_large(self):
        curve = PeanoCurve(243)
        rng = np.random.default_rng(0)
        cells = rng.integers(0, 243, size=(500, 2))
        assert (curve.point_many(curve.index_many(cells)) == cells).all()
