"""Contract tests for the :class:`SpaceFillingCurve` base class."""

import numpy as np
import pytest

from repro.curves import OnionCurve2D, ZOrderCurve, make_curve
from repro.errors import OutOfUniverseError


class TestIdentity:
    def test_sizing(self):
        curve = make_curve("onion", 8, 2)
        assert curve.side == 8
        assert curve.dim == 2
        assert curve.size == 64

    def test_repr_mentions_parameters(self):
        assert "side=8" in repr(make_curve("hilbert", 8, 3))

    def test_equality_and_hash(self):
        a = OnionCurve2D(8)
        b = OnionCurve2D(8)
        c = OnionCurve2D(16)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != ZOrderCurve(8, 2)

    def test_name(self):
        assert make_curve("onion", 8, 2).name == "onion"
        assert make_curve("zorder", 8, 2).name == "zorder"


class TestValidation:
    def test_index_rejects_outside_cell(self, small_curve):
        with pytest.raises(OutOfUniverseError):
            small_curve.index((small_curve.side,) * small_curve.dim)

    def test_index_rejects_wrong_dim(self, small_curve):
        with pytest.raises(OutOfUniverseError):
            small_curve.index((0,) * (small_curve.dim + 1))

    def test_point_rejects_bad_keys(self, small_curve):
        with pytest.raises(OutOfUniverseError):
            small_curve.point(-1)
        with pytest.raises(OutOfUniverseError):
            small_curve.point(small_curve.size)

    def test_index_many_rejects_out_of_range(self, small_curve):
        bad = np.full((2, small_curve.dim), small_curve.side, dtype=np.int64)
        with pytest.raises(OutOfUniverseError):
            small_curve.index_many(bad)

    def test_point_many_rejects_out_of_range(self, small_curve):
        with pytest.raises(OutOfUniverseError):
            small_curve.point_many(np.asarray([small_curve.size]))


class TestTraversal:
    def test_walk_covers_every_cell_once(self, small_curve):
        cells = list(small_curve.walk())
        assert len(cells) == small_curve.size
        assert len(set(cells)) == small_curve.size

    def test_edges_count(self, small_curve):
        assert sum(1 for _ in small_curve.edges()) == small_curve.size - 1

    def test_first_and_last_cells(self, small_curve):
        assert small_curve.first_cell == small_curve.point(0)
        assert small_curve.last_cell == small_curve.point(small_curve.size - 1)

    def test_verify_bijection_passes(self, small_curve):
        small_curve.verify_bijection()

    def test_continuity_flag_is_truthful(self, small_curve):
        if small_curve.is_continuous:
            small_curve.verify_continuity()
            assert not list(small_curve.discontinuities())
        else:
            jumps = list(small_curve.discontinuities())
            assert jumps, f"{small_curve} flagged discontinuous but has no jumps"

    def test_discontinuities_are_real_jumps(self, small_curve):
        for cell in small_curve.discontinuities():
            key = small_curve.index(cell)
            prev = small_curve.point(key - 1)
            step = sum(abs(a - b) for a, b in zip(cell, prev))
            assert step != 1


class TestPerInstanceCaches:
    def test_endpoint_cells_cached(self, small_curve):
        assert small_curve.first_cell == small_curve.point(0)
        assert small_curve.last_cell == small_curve.point(small_curve.size - 1)
        assert small_curve.__dict__["_first_cell"] == small_curve.first_cell
        assert small_curve.__dict__["_last_cell"] == small_curve.last_cell

    def test_jump_cells_cached_and_match_discontinuities(self, small_curve):
        jumps = small_curve.jump_cells()
        assert jumps is small_curve.jump_cells()  # materialized once
        assert jumps.shape == (len(list(small_curve.discontinuities())), small_curve.dim)
        assert [tuple(j) for j in jumps.tolist()] == [
            tuple(c) for c in small_curve.discontinuities()
        ]

    def test_jump_predecessors_cached_and_correct(self, small_curve):
        preds = small_curve.jump_predecessor_cells()
        assert preds is small_curve.jump_predecessor_cells()
        jumps = small_curve.jump_cells()
        assert preds.shape == jumps.shape
        for jump, pred in zip(jumps.tolist(), preds.tolist()):
            key = small_curve.index(tuple(jump))
            assert tuple(pred) == small_curve.point(key - 1)


class TestVectorizedDefaults:
    def test_index_many_matches_scalar(self, small_curve):
        cells = np.asarray(list(small_curve.walk()), dtype=np.int64)
        keys = small_curve.index_many(cells)
        expected = [small_curve.index(tuple(c)) for c in cells]
        assert keys.tolist() == expected

    def test_point_many_matches_scalar(self, small_curve):
        keys = np.arange(small_curve.size, dtype=np.int64)
        points = small_curve.point_many(keys)
        expected = [small_curve.point(int(k)) for k in keys]
        assert [tuple(p) for p in points.tolist()] == expected

    def test_empty_batches(self, small_curve):
        assert small_curve.index_many(
            np.empty((0, small_curve.dim), dtype=np.int64)
        ).shape == (0,)
        assert small_curve.point_many(np.empty(0, dtype=np.int64)).shape == (
            0,
            small_curve.dim,
        )
