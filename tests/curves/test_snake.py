"""The snake (boustrophedon) curve."""

import numpy as np
import pytest

from repro.curves import SnakeCurve


class TestShape:
    def test_2d_rows_alternate_direction(self):
        curve = SnakeCurve(4, 2)
        assert [curve.point(k) for k in range(8)] == [
            (0, 0), (1, 0), (2, 0), (3, 0),
            (3, 1), (2, 1), (1, 1), (0, 1),
        ]

    def test_rows_remain_contiguous(self):
        curve = SnakeCurve(8, 2)
        for y in range(8):
            keys = sorted(curve.index((x, y)) for x in range(8))
            assert keys == list(range(y * 8, y * 8 + 8))


class TestStructure:
    @pytest.mark.parametrize("side,dim", [(2, 2), (5, 2), (8, 2), (3, 3), (4, 3), (3, 4)])
    def test_bijection(self, side, dim):
        SnakeCurve(side, dim).verify_bijection()

    @pytest.mark.parametrize("side,dim", [(2, 2), (5, 2), (8, 2), (3, 3), (4, 3), (3, 4)])
    def test_continuity(self, side, dim):
        """Continuity in every dimension is the point of the snake curve."""
        SnakeCurve(side, dim).verify_continuity()


class TestVectorized:
    @pytest.mark.parametrize("side,dim", [(8, 2), (5, 3)])
    def test_matches_scalar(self, side, dim):
        curve = SnakeCurve(side, dim)
        rng = np.random.default_rng(2)
        cells = rng.integers(0, side, size=(150, dim))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]
        keys = rng.integers(0, curve.size, size=150)
        assert [tuple(p) for p in curve.point_many(keys).tolist()] == [
            curve.point(int(k)) for k in keys
        ]
