"""The Gray-code curve (Faloutsos)."""

import numpy as np
import pytest

from repro.curves import GrayCodeCurve
from repro.curves._bits import interleave
from repro.errors import InvalidUniverseError


class TestDefinition:
    def test_consecutive_cells_differ_in_one_interleaved_bit(self):
        """The defining property: successive keys flip exactly one bit of
        the interleaved coordinate word."""
        curve = GrayCodeCurve(8, 2)
        previous = None
        for key in range(curve.size):
            cell = curve.point(key)
            word = interleave(cell, curve.bits)
            if previous is not None:
                diff = word ^ previous
                assert diff and diff & (diff - 1) == 0
            previous = word

    def test_starts_at_origin(self):
        assert GrayCodeCurve(8, 2).point(0) == (0, 0)


class TestStructure:
    @pytest.mark.parametrize("side,dim", [(2, 2), (8, 2), (16, 2), (4, 3)])
    def test_bijection(self, side, dim):
        GrayCodeCurve(side, dim).verify_bijection()

    def test_not_continuous_in_grid_space(self):
        curve = GrayCodeCurve(8, 2)
        assert not curve.is_continuous
        assert list(curve.discontinuities())

    def test_rejects_non_power_side(self):
        with pytest.raises(InvalidUniverseError):
            GrayCodeCurve(10, 2)


class TestBlockRanges:
    def test_block_key_range_is_exact(self):
        curve = GrayCodeCurve(8, 2)
        for level in range(4):
            block = 1 << level
            for cx in range(0, 8, block):
                for cy in range(0, 8, block):
                    start, size = curve.block_key_range((cx, cy), level)
                    keys = sorted(
                        curve.index((cx + dx, cy + dy))
                        for dx in range(block)
                        for dy in range(block)
                    )
                    assert keys == list(range(start, start + size))

    def test_vectorized_matches_scalar(self):
        curve = GrayCodeCurve(16, 2)
        rng = np.random.default_rng(9)
        cells = rng.integers(0, 16, size=(200, 2))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]
        keys = rng.integers(0, curve.size, size=200)
        assert [tuple(p) for p in curve.point_many(keys).tolist()] == [
            curve.point(int(k)) for k in keys
        ]
