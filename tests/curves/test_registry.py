"""Curve registry dispatch."""

import pytest

from repro.curves import (
    HilbertCurve,
    OnionCurve2D,
    OnionCurve3D,
    OnionCurveND,
    curve_names,
    make_curve,
    register_curve,
)
from repro.errors import UnknownCurveError


class TestMakeCurve:
    def test_onion_dispatches_on_dimension(self):
        assert isinstance(make_curve("onion", 8, 2), OnionCurve2D)
        assert isinstance(make_curve("onion", 8, 3), OnionCurve3D)
        assert isinstance(make_curve("onion", 8, 4), OnionCurveND)

    def test_names_are_case_insensitive(self):
        assert isinstance(make_curve("HILBERT", 8, 2), HilbertCurve)

    def test_z_alias(self):
        assert make_curve("z", 8, 2).name == "zorder"

    def test_unknown_name(self):
        with pytest.raises(UnknownCurveError):
            make_curve("sierpinski", 8, 2)

    def test_curve_names_sorted_and_complete(self):
        names = curve_names()
        assert names == sorted(names)
        for required in ("onion", "hilbert", "zorder", "gray", "rowmajor",
                         "columnmajor", "snake"):
            assert required in names


class TestRegisterCurve:
    def test_custom_registration(self):
        class Marker(OnionCurve2D):
            pass

        register_curve("marker-test", lambda side, dim: Marker(side))
        try:
            assert isinstance(make_curve("marker-test", 8, 2), Marker)
        finally:
            from repro.curves import registry

            registry._REGISTRY.pop("marker-test", None)
