"""The d-dimensional Hilbert curve (Skilling's algorithm)."""

import numpy as np
import pytest

from repro.curves import HilbertCurve
from repro.errors import InvalidUniverseError


class TestConstruction:
    @pytest.mark.parametrize("bad", [3, 5, 6, 7, 12, 100])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(InvalidUniverseError):
            HilbertCurve(bad, 2)

    def test_rejects_side_one(self):
        with pytest.raises(InvalidUniverseError):
            HilbertCurve(1, 2)

    def test_bits(self):
        assert HilbertCurve(8, 2).bits == 3
        assert HilbertCurve(1024, 2).bits == 10


class TestKnownValues:
    def test_order1_2d(self):
        """The 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0)."""
        curve = HilbertCurve(2, 2)
        walk = [curve.point(k) for k in range(4)]
        assert walk[0] == (0, 0)
        assert walk[-1] == (1, 0)
        assert set(walk) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_starts_at_origin(self):
        for dim in (2, 3, 4):
            assert HilbertCurve(4, dim).point(0) == (0,) * dim

    def test_ends_adjacent_to_origin_axis(self):
        """The 2-d Hilbert curve's last cell is the opposite corner of the
        first axis, one step from closing the loop edge-wise."""
        curve = HilbertCurve(8, 2)
        assert curve.last_cell == (7, 0)


class TestStructure:
    @pytest.mark.parametrize("side,dim", [(2, 2), (4, 2), (8, 2), (16, 2),
                                          (2, 3), (4, 3), (8, 3), (2, 4), (4, 4)])
    def test_bijection(self, side, dim):
        HilbertCurve(side, dim).verify_bijection()

    @pytest.mark.parametrize("side,dim", [(2, 2), (4, 2), (8, 2), (16, 2),
                                          (2, 3), (4, 3), (8, 3), (2, 4), (4, 4)])
    def test_continuity(self, side, dim):
        """Continuity is the strong correctness witness for Skilling's
        transform: any packing/orientation mistake breaks unit steps."""
        HilbertCurve(side, dim).verify_continuity()

    def test_nested_blocks_are_contiguous(self):
        """Each quadrant of the 2-d curve occupies one contiguous key
        quarter (the recursive-tiling property)."""
        curve = HilbertCurve(8, 2)
        quarter = curve.size // 4
        for q in range(4):
            cells = {curve.point(k) for k in range(q * quarter, (q + 1) * quarter)}
            xs = {c[0] for c in cells}
            ys = {c[1] for c in cells}
            assert max(xs) - min(xs) == 3
            assert max(ys) - min(ys) == 3


class TestVectorized:
    @pytest.mark.parametrize("side,dim", [(8, 2), (16, 2), (8, 3), (4, 4)])
    def test_index_many_matches_scalar(self, side, dim):
        curve = HilbertCurve(side, dim)
        rng = np.random.default_rng(side * dim)
        cells = rng.integers(0, side, size=(300, dim))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]

    @pytest.mark.parametrize("side,dim", [(8, 2), (16, 2), (8, 3), (4, 4)])
    def test_point_many_matches_scalar(self, side, dim):
        curve = HilbertCurve(side, dim)
        rng = np.random.default_rng(side * dim + 1)
        keys = rng.integers(0, curve.size, size=300)
        points = curve.point_many(keys)
        assert [tuple(p) for p in points.tolist()] == [
            curve.point(int(k)) for k in keys
        ]

    def test_large_universe_vectorized(self):
        """The paper's 2¹⁰-side universe works through the int64 kernels."""
        curve = HilbertCurve(1024, 2)
        rng = np.random.default_rng(42)
        cells = rng.integers(0, 1024, size=(1000, 2))
        keys = curve.index_many(cells)
        back = curve.point_many(keys)
        assert (back == cells).all()
        # spot-check scalar agreement
        for i in range(0, 1000, 100):
            assert curve.index(tuple(cells[i])) == keys[i]
