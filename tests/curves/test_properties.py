"""Hypothesis cross-curve properties: bijectivity and round trips."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import make_curve

_POW2_SIDES = st.sampled_from([2, 4, 8, 16])
_ANY_SIDES = st.integers(1, 16)
_EVEN_SIDES = st.sampled_from([2, 4, 6, 8, 10, 12])


def _roundtrip_key(curve, key):
    assert curve.index(curve.point(key)) == key


def _roundtrip_cell(curve, cell):
    assert curve.point(curve.index(cell)) == tuple(cell)


class TestRoundTrips:
    @given(_ANY_SIDES, st.data())
    def test_onion2d(self, side, data):
        curve = make_curve("onion", side, 2)
        key = data.draw(st.integers(0, curve.size - 1))
        _roundtrip_key(curve, key)
        cell = data.draw(st.tuples(*[st.integers(0, side - 1)] * 2))
        _roundtrip_cell(curve, cell)

    @given(_EVEN_SIDES, st.data())
    def test_onion3d(self, side, data):
        curve = make_curve("onion", side, 3)
        key = data.draw(st.integers(0, curve.size - 1))
        _roundtrip_key(curve, key)
        cell = data.draw(st.tuples(*[st.integers(0, side - 1)] * 3))
        _roundtrip_cell(curve, cell)

    @given(_POW2_SIDES, st.integers(2, 4), st.data())
    def test_hilbert(self, side, dim, data):
        curve = make_curve("hilbert", side, dim)
        key = data.draw(st.integers(0, curve.size - 1))
        _roundtrip_key(curve, key)
        cell = data.draw(st.tuples(*[st.integers(0, side - 1)] * dim))
        _roundtrip_cell(curve, cell)

    @given(_POW2_SIDES, st.integers(2, 3), st.data())
    def test_zorder_and_gray(self, side, dim, data):
        for name in ("zorder", "gray"):
            curve = make_curve(name, side, dim)
            key = data.draw(st.integers(0, curve.size - 1))
            _roundtrip_key(curve, key)

    @given(st.integers(1, 12), st.integers(2, 4), st.data())
    def test_snake_and_lexicographic(self, side, dim, data):
        for name in ("snake", "rowmajor", "columnmajor"):
            curve = make_curve(name, side, dim)
            key = data.draw(st.integers(0, curve.size - 1))
            _roundtrip_key(curve, key)


class TestContinuityProperties:
    @given(_ANY_SIDES, st.data())
    def test_onion2d_steps_are_unit(self, side, data):
        curve = make_curve("onion", side, 2)
        if curve.size < 2:
            return
        key = data.draw(st.integers(0, curve.size - 2))
        a = curve.point(key)
        b = curve.point(key + 1)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    @given(_POW2_SIDES, st.integers(2, 4), st.data())
    def test_hilbert_steps_are_unit(self, side, dim, data):
        curve = make_curve("hilbert", side, dim)
        key = data.draw(st.integers(0, curve.size - 2))
        a = curve.point(key)
        b = curve.point(key + 1)
        assert sum(abs(x - y) for x, y in zip(a, b)) == 1


class TestVectorizedAgreement:
    @given(
        st.sampled_from(["onion", "hilbert", "zorder", "gray", "snake"]),
        st.integers(2, 3),
        st.integers(0, 2**31),
    )
    def test_batch_equals_scalar(self, name, dim, seed):
        curve = make_curve(name, 8, dim)
        rng = np.random.default_rng(seed)
        cells = rng.integers(0, 8, size=(50, dim))
        batch = curve.index_many(cells)
        for row, key in zip(cells, batch):
            assert curve.index(tuple(row)) == key
        keys = rng.integers(0, curve.size, size=50)
        points = curve.point_many(keys)
        for key, row in zip(keys, points):
            assert curve.point(int(key)) == tuple(row)
