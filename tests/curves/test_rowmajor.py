"""Row-major and column-major curves."""

import numpy as np
import pytest

from repro.curves import ColumnMajorCurve, RowMajorCurve
from repro.core.clustering import clustering_number
from repro.core.queries import columns_query_set, rows_query_set


class TestRowMajor:
    def test_rows_are_contiguous(self):
        curve = RowMajorCurve(8, 2)
        for y in range(8):
            keys = [curve.index((x, y)) for x in range(8)]
            assert keys == list(range(y * 8, y * 8 + 8))

    def test_optimal_on_rows_pessimal_on_columns(self):
        """The Lemma 10 setup."""
        curve = RowMajorCurve(8, 2)
        for row in rows_query_set(8):
            assert clustering_number(curve, row) == 1
        for col in columns_query_set(8):
            assert clustering_number(curve, col) == 8

    @pytest.mark.parametrize("side,dim", [(8, 2), (5, 3), (3, 4)])
    def test_bijection(self, side, dim):
        RowMajorCurve(side, dim).verify_bijection()


class TestColumnMajor:
    def test_columns_are_contiguous(self):
        curve = ColumnMajorCurve(8, 2)
        for x in range(8):
            keys = [curve.index((x, y)) for y in range(8)]
            assert keys == list(range(x * 8, x * 8 + 8))

    def test_mirror_of_rowmajor(self):
        row = RowMajorCurve(8, 2)
        col = ColumnMajorCurve(8, 2)
        for x in range(8):
            for y in range(8):
                assert col.index((x, y)) == row.index((y, x))

    @pytest.mark.parametrize("side,dim", [(8, 2), (5, 3)])
    def test_bijection(self, side, dim):
        ColumnMajorCurve(side, dim).verify_bijection()


class TestVectorized:
    @pytest.mark.parametrize("cls", [RowMajorCurve, ColumnMajorCurve])
    def test_matches_scalar(self, cls):
        curve = cls(7, 3)
        rng = np.random.default_rng(1)
        cells = rng.integers(0, 7, size=(150, 3))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]
        keys = rng.integers(0, curve.size, size=150)
        assert [tuple(p) for p in curve.point_many(keys).tolist()] == [
            curve.point(int(k)) for k in keys
        ]
