"""The Z (Morton) curve."""

import numpy as np
import pytest

from repro.curves import ZOrderCurve
from repro.errors import InvalidUniverseError


class TestKnownValues:
    def test_2x2_is_a_z(self):
        curve = ZOrderCurve(2, 2)
        assert [curve.point(k) for k in range(4)] == [
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
        ]

    def test_quadrants_are_key_contiguous(self):
        curve = ZOrderCurve(8, 2)
        quarter = curve.size // 4
        for q in range(4):
            cells = {curve.point(k) for k in range(q * quarter, (q + 1) * quarter)}
            xs = sorted(c[0] for c in cells)
            ys = sorted(c[1] for c in cells)
            assert xs[-1] - xs[0] == 3 and ys[-1] - ys[0] == 3


class TestStructure:
    @pytest.mark.parametrize("side,dim", [(2, 2), (8, 2), (16, 2), (4, 3), (8, 3)])
    def test_bijection(self, side, dim):
        ZOrderCurve(side, dim).verify_bijection()

    def test_not_continuous(self):
        curve = ZOrderCurve(4, 2)
        assert not curve.is_continuous
        assert list(curve.discontinuities())

    def test_rejects_non_power_side(self):
        with pytest.raises(InvalidUniverseError):
            ZOrderCurve(6, 2)


class TestBlockRanges:
    @pytest.mark.parametrize("side,dim", [(8, 2), (8, 3)])
    def test_block_key_range_is_exact(self, side, dim):
        """Every aligned block's claimed range equals the true key set."""
        curve = ZOrderCurve(side, dim)
        bits = curve.bits
        for level in range(bits + 1):
            block = 1 << level
            for corner in np.ndindex(*(side // block,) * dim):
                origin = tuple(c * block for c in corner)
                start, size = curve.block_key_range(origin, level)
                assert size == block**dim
                cells = [
                    tuple(o + d for o, d in zip(origin, offset))
                    for offset in np.ndindex(*(block,) * dim)
                ]
                keys = sorted(curve.index(c) for c in cells)
                assert keys == list(range(start, start + size))

    def test_vectorized_matches_scalar(self):
        curve = ZOrderCurve(16, 3)
        rng = np.random.default_rng(5)
        cells = rng.integers(0, 16, size=(200, 3))
        assert curve.index_many(cells).tolist() == [
            curve.index(tuple(c)) for c in cells
        ]
        keys = rng.integers(0, curve.size, size=200)
        assert [tuple(p) for p in curve.point_many(keys).tolist()] == [
            curve.point(int(k)) for k in keys
        ]
