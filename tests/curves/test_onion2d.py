"""The 2-d onion curve against the paper's inductive definition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import OnionCurve2D, onion2d_index_recursive
from repro.curves.onion2d import onion2d_index_array, onion2d_point_array
from repro.errors import OutOfUniverseError


class TestPaperDefinition:
    def test_o2_base_case(self):
        """Figure 3 left: the 2x2 onion curve."""
        curve = OnionCurve2D(2)
        assert curve.index((0, 0)) == 0
        assert curve.index((1, 0)) == 1
        assert curve.index((1, 1)) == 2
        assert curve.index((0, 1)) == 3

    def test_o4_matches_figure3(self):
        """Figure 3 right: the 4x4 onion curve — outer ring 0..11 counter-
        clockwise from the origin, inner 2x2 ring 12..15."""
        curve = OnionCurve2D(4)
        expected = {
            (0, 0): 0, (1, 0): 1, (2, 0): 2, (3, 0): 3,
            (3, 1): 4, (3, 2): 5, (3, 3): 6,
            (2, 3): 7, (1, 3): 8, (0, 3): 9,
            (0, 2): 10, (0, 1): 11,
            (1, 1): 12, (2, 1): 13, (2, 2): 14, (1, 2): 15,
        }
        for cell, key in expected.items():
            assert curve.index(cell) == key, cell

    @pytest.mark.parametrize("side", [2, 4, 6, 8, 10, 12])
    def test_closed_form_equals_recursion(self, side):
        curve = OnionCurve2D(side)
        for x in range(side):
            for y in range(side):
                assert curve.index((x, y)) == onion2d_index_recursive(side, (x, y))

    def test_recursion_rejects_outside(self):
        with pytest.raises(OutOfUniverseError):
            onion2d_index_recursive(4, (4, 0))


class TestStructure:
    @pytest.mark.parametrize("side", [1, 2, 3, 4, 5, 8, 9, 16])
    def test_bijection_all_sides(self, side):
        OnionCurve2D(side).verify_bijection()

    @pytest.mark.parametrize("side", [1, 2, 3, 4, 5, 8, 9, 16])
    def test_continuity_all_sides(self, side):
        """The 2-d onion curve is continuous even for odd sides."""
        OnionCurve2D(side).verify_continuity()

    def test_layers_are_key_contiguous(self):
        """All of layer t is numbered before any of layer t+1 (the curve's
        defining property)."""
        side = 10
        curve = OnionCurve2D(side)
        previous_layer = 1
        for key in range(curve.size):
            layer = curve.layer_of(curve.point(key))
            assert layer >= previous_layer
            previous_layer = layer

    def test_starts_at_origin_ends_at_center(self):
        curve = OnionCurve2D(8)
        assert curve.first_cell == (0, 0)
        center = curve.last_cell
        assert curve.layer_of(center) == 4

    def test_dim_guard(self):
        with pytest.raises(OutOfUniverseError):
            OnionCurve2D(8, dim=3)


class TestVectorized:
    @pytest.mark.parametrize("side", [2, 5, 8, 13, 64])
    def test_index_many_matches_scalar(self, side):
        curve = OnionCurve2D(side)
        rng = np.random.default_rng(side)
        cells = rng.integers(0, side, size=(200, 2))
        keys = curve.index_many(cells)
        assert keys.tolist() == [curve.index(tuple(c)) for c in cells]

    @pytest.mark.parametrize("side", [2, 5, 8, 13, 64])
    def test_point_many_matches_scalar(self, side):
        curve = OnionCurve2D(side)
        rng = np.random.default_rng(side)
        keys = rng.integers(0, curve.size, size=200)
        points = curve.point_many(keys)
        assert [tuple(p) for p in points.tolist()] == [
            curve.point(int(k)) for k in keys
        ]

    def test_array_kernels_with_per_element_sides(self):
        """The side-parametric kernels used by the 3-d faces."""
        sides = np.asarray([2, 4, 6, 8] * 10, dtype=np.int64)
        rng = np.random.default_rng(3)
        x = rng.integers(0, sides)
        y = rng.integers(0, sides)
        keys = onion2d_index_array(x, y, sides)
        for xi, yi, si, ki in zip(x, y, sides, keys):
            assert OnionCurve2D(int(si)).index((int(xi), int(yi))) == ki
        back = onion2d_point_array(keys, sides)
        assert (back[:, 0] == x).all() and (back[:, 1] == y).all()

    @given(st.integers(1, 40))
    def test_roundtrip_any_side(self, side):
        curve = OnionCurve2D(side)
        keys = np.arange(curve.size, dtype=np.int64)
        cells = curve.point_many(keys)
        assert (curve.index_many(cells) == keys).all()
