"""The 3-d onion curve: layer structure, the S1..S10 partition, jumps."""

import numpy as np
import pytest

from repro.curves import DEFAULT_FACE_ORDER, OnionCurve3D
from repro.errors import InvalidUniverseError, OutOfUniverseError
from repro.geometry import boundary_distance


class TestConstruction:
    def test_rejects_odd_side(self):
        with pytest.raises(InvalidUniverseError):
            OnionCurve3D(7)

    def test_rejects_wrong_dim(self):
        with pytest.raises(OutOfUniverseError):
            OnionCurve3D(8, dim=2)

    def test_rejects_bad_face_order(self):
        with pytest.raises(InvalidUniverseError):
            OnionCurve3D(8, face_order=(1, 2, 3))
        with pytest.raises(InvalidUniverseError):
            OnionCurve3D(8, face_order=(1,) * 10)

    def test_face_order_exposed(self):
        assert OnionCurve3D(8).face_order == DEFAULT_FACE_ORDER


class TestPaperStructure:
    @pytest.mark.parametrize("side", [2, 4, 6, 8])
    def test_bijection(self, side):
        OnionCurve3D(side).verify_bijection()

    def test_layers_are_key_contiguous(self):
        """The essential rule of Section VI-A: layers are sequential."""
        side = 8
        curve = OnionCurve3D(side)
        previous = 1
        for key in range(curve.size):
            layer = boundary_distance(curve.point(key), side)
            assert layer >= previous
            previous = layer

    def test_k1_telescopes(self):
        """K1(t) (paper's per-layer sum) equals side³ − j³."""
        side = 8
        m = side // 2
        for t_prime in range(1, m + 1):
            k1 = sum(
                2 * (side - 2 * t + 2) ** 2
                + 4 * (side - 2 * t) ** 2
                + 4 * (side - 2 * t)
                for t in range(1, t_prime)
            )
            j = side - 2 * (t_prime - 1)
            assert k1 == side**3 - j**3

    def test_piece_sizes_match_paper_v_vector(self):
        """V_t(1..10) from Section VI-A."""
        side = 8
        curve = OnionCurve3D(side)
        for t in range(1, side // 2 + 1):
            j = side - 2 * (t - 1)
            sizes = [curve._piece_size(j, g) for g in range(1, 11)]
            expected_face = j * j
            expected_line = max(j - 2, 0)
            expected_inner = max(j - 2, 0) ** 2
            assert sizes[0] == sizes[1] == expected_face
            assert sizes[2] == sizes[4] == sizes[5] == sizes[7] == expected_line
            assert sizes[3] == sizes[6] == sizes[8] == sizes[9] == expected_inner

    def test_first_cells(self):
        curve = OnionCurve3D(8)
        assert curve.point(0) == (0, 0, 0)
        # The first layer's S1 face is the slab x = 0.
        face_size = 8 * 8
        for key in range(face_size):
            assert curve.point(key)[0] == 0


class TestDiscontinuities:
    def test_jump_list_is_exact(self):
        """The analytic jump enumeration matches a full O(n) walk."""
        curve = OnionCurve3D(8)
        analytic = sorted(curve.discontinuities())
        walked = []
        previous = None
        for cell in curve.walk():
            if previous is not None:
                if sum(abs(a - b) for a, b in zip(previous, cell)) != 1:
                    walked.append(cell)
            previous = cell
        assert analytic == sorted(walked)

    def test_jump_count_is_linear_in_side(self):
        """At most ten pieces per layer can open with a jump."""
        for side in (4, 8, 12, 16):
            jumps = list(OnionCurve3D(side).discontinuities())
            assert len(jumps) <= 10 * (side // 2)


class TestFaceOrderAblation:
    """The paper: the within-layer piece order is immaterial."""

    REVERSED = tuple(reversed(DEFAULT_FACE_ORDER))

    def test_permuted_curve_is_bijective(self):
        OnionCurve3D(8, face_order=self.REVERSED).verify_bijection()

    def test_permuted_curve_keeps_layer_order(self):
        curve = OnionCurve3D(8, face_order=self.REVERSED)
        previous = 1
        for key in range(curve.size):
            layer = boundary_distance(curve.point(key), 8)
            assert layer >= previous
            previous = layer

    def test_permuted_jump_enumeration_still_exact(self):
        curve = OnionCurve3D(6, face_order=self.REVERSED)
        analytic = sorted(curve.discontinuities())
        walked = []
        previous = None
        for cell in curve.walk():
            if previous is not None:
                if sum(abs(a - b) for a, b in zip(previous, cell)) != 1:
                    walked.append(cell)
            previous = cell
        assert analytic == sorted(walked)


class TestVectorized:
    @pytest.mark.parametrize("side", [2, 4, 8, 16])
    def test_index_many_matches_scalar(self, side):
        curve = OnionCurve3D(side)
        rng = np.random.default_rng(side)
        cells = rng.integers(0, side, size=(300, 3))
        keys = curve.index_many(cells)
        assert keys.tolist() == [curve.index(tuple(c)) for c in cells]

    @pytest.mark.parametrize("side", [2, 4, 8, 16])
    def test_point_many_matches_scalar(self, side):
        curve = OnionCurve3D(side)
        rng = np.random.default_rng(side)
        keys = rng.integers(0, curve.size, size=300)
        points = curve.point_many(keys)
        assert [tuple(p) for p in points.tolist()] == [
            curve.point(int(k)) for k in keys
        ]

    def test_permuted_vectorized_matches_scalar(self):
        curve = OnionCurve3D(8, face_order=TestFaceOrderAblation.REVERSED)
        keys = np.arange(curve.size, dtype=np.int64)
        points = curve.point_many(keys)
        assert [tuple(p) for p in points.tolist()] == [
            curve.point(int(k)) for k in keys
        ]
        assert (curve.index_many(points) == keys).all()
