"""The top-level ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestCurvesCommand:
    def test_lists_curves(self, capsys):
        assert main(["curves"]) == 0
        out = capsys.readouterr().out
        for name in ("onion", "hilbert", "peano", "zorder"):
            assert name in out


class TestKeyAndCell:
    def test_key(self, capsys):
        assert main(["key", "--curve", "onion", "--side", "4", "3", "0"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_cell(self, capsys):
        assert main(["cell", "--curve", "onion", "--side", "4", "3"]) == 0
        assert capsys.readouterr().out.strip() == "3,0"

    def test_roundtrip_3d(self, capsys):
        assert main(["key", "--curve", "onion", "--side", "4", "--dim", "3",
                     "1", "2", "3"]) == 0
        key = capsys.readouterr().out.strip()
        assert main(["cell", "--curve", "onion", "--side", "4", "--dim", "3",
                     key]) == 0
        assert capsys.readouterr().out.strip() == "1,2,3"


class TestClusterCommand:
    def test_cluster_count(self, capsys):
        assert main(["cluster", "--curve", "hilbert", "--side", "8",
                     "--lo", "0,1", "--hi", "6,7"]) == 0
        assert "clusters: 5" in capsys.readouterr().out

    def test_cluster_runs_and_draw(self, capsys):
        assert main(["cluster", "--curve", "onion", "--side", "8",
                     "--lo", "0,1", "--hi", "6,7", "--runs", "--draw"]) == 0
        out = capsys.readouterr().out
        assert "run [" in out
        assert "1 cluster(s) under onion" in out


class TestExplainCommand:
    def test_explain_prints_plan_and_execution(self, capsys):
        assert main(["explain", "--curve", "onion", "--side", "16",
                     "--lo", "2,3", "--hi", "10,11", "--points", "400"]) == 0
        out = capsys.readouterr().out
        assert "QueryPlan" in out
        assert "estimated seeks" in out
        assert "executed:" in out

    def test_explain_with_gap_tolerance(self, capsys):
        assert main(["explain", "--curve", "hilbert", "--side", "16",
                     "--lo", "1,1", "--hi", "12,13", "--gap", "32",
                     "--points", "400"]) == 0
        out = capsys.readouterr().out
        assert "gap_tolerance=32" in out


class TestQueryCommand:
    def test_single_rect(self, capsys):
        assert main(["query", "--curve", "onion", "--side", "16",
                     "--rect", "2,3:10,11", "--points", "400"]) == 0
        out = capsys.readouterr().out
        assert "executed:" in out
        assert "seeks" in out

    def test_multi_rect_union_with_limit(self, capsys):
        assert main(["query", "--curve", "onion", "--side", "16",
                     "--rect", "0,0:6,6", "--rect", "4,4:12,12",
                     "--limit", "10", "--points", "400"]) == 0
        out = capsys.readouterr().out
        assert "10 rows" in out
        assert "[truncated by limit]" in out

    def test_stream_reports_peak_residency(self, capsys):
        assert main(["query", "--curve", "hilbert", "--side", "16",
                     "--rect", "0,0:15,15", "--stream",
                     "--points", "400", "--page-capacity", "8"]) == 0
        out = capsys.readouterr().out
        assert "streamed:" in out
        assert "peak page residency" in out

    def test_sharded_service(self, capsys):
        assert main(["query", "--curve", "onion", "--side", "16",
                     "--rect", "1,1:9,9", "--shards", "3",
                     "--points", "400"]) == 0
        assert "executed:" in capsys.readouterr().out

    def test_knn(self, capsys):
        assert main(["query", "--curve", "onion", "--side", "16",
                     "--knn", "5,5", "--k", "3", "--points", "400"]) == 0
        out = capsys.readouterr().out
        assert "nearest" in out
        assert "distance" in out

    def test_rect_required_without_knn(self):
        import pytest

        from repro.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            main(["query", "--curve", "onion", "--side", "16",
                  "--points", "100"])

    def test_malformed_rect_rejected(self):
        import pytest

        # argparse turns the InvalidQueryError (a ValueError) from
        # _parse_rect into a usage error
        with pytest.raises(SystemExit):
            main(["query", "--curve", "onion", "--side", "16",
                  "--rect", "2,3", "--points", "100"])


class TestBatchCommand:
    def test_batch_reports_seek_comparison(self, capsys):
        assert main(["batch", "--curve", "hilbert", "--side", "16",
                     "--count", "40", "--points", "300"]) == 0
        out = capsys.readouterr().out
        assert "query-at-a-time:" in out
        assert "batched:" in out
        assert "plan cache:" in out

    def test_batch_with_shards_reports_fanout(self, capsys):
        assert main(["batch", "--curve", "onion", "--side", "16",
                     "--count", "40", "--points", "300", "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharded:" in out
        assert "4 shards" in out
        assert "avg fan-out" in out

    def test_explain_with_shards_is_shard_aware(self, capsys):
        assert main(["explain", "--curve", "onion", "--side", "16",
                     "--lo", "2,3", "--hi", "10,11", "--points", "400",
                     "--shards", "4"]) == 0
        out = capsys.readouterr().out
        assert "ShardedPlan" in out
        assert "touched of 4" in out
        assert "executed:" in out


class TestAdviseCommand:
    def test_row_workload_ranks_rowmajor_first(self, capsys):
        assert main(["advise", "--side", "32", "--shapes", "32x1"]) == 0
        out = capsys.readouterr().out
        assert "winner: rowmajor" in out
        assert "expected seeks" in out

    def test_cube_workload_ranks_onion_first(self, capsys):
        assert main(["advise", "--side", "32", "--shapes", "20x20"]) == 0
        assert "winner: onion" in capsys.readouterr().out

    def test_weighted_mixed_workload_table(self, capsys):
        assert main(["advise", "--side", "32", "--curves", "onion,rowmajor",
                     "--shapes", "32x1:100,20x20:1"]) == 0
        out = capsys.readouterr().out
        assert "winner: rowmajor" in out  # row-heavy mix
        assert "32x1" in out and "20x20" in out

    def test_restricted_candidate_list(self, capsys):
        assert main(["advise", "--side", "16", "--curves", "hilbert,zorder",
                     "--shapes", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "onion" not in out


class TestMigrateCommand:
    def test_explicit_target_reduces_row_seeks(self, capsys):
        assert main(["migrate", "--curve", "hilbert", "--to", "rowmajor",
                     "--side", "16", "--points", "256", "--shapes", "16x1",
                     "--queries", "20"]) == 0
        out = capsys.readouterr().out
        assert "before migration:" in out
        assert "migrated 256 records" in out
        assert "after migration:" in out
        assert "seek reduction:" in out

    def test_auto_target_prints_drift_report(self, capsys):
        assert main(["migrate", "--curve", "rowmajor", "--to", "auto",
                     "--side", "32", "--points", "1024", "--page-capacity", "4",
                     "--shapes", "20x20", "--queries", "20"]) == 0
        out = capsys.readouterr().out
        assert "DriftReport" in out
        assert "onion" in out
        assert "after migration:" in out

    def test_bad_shape_or_weight_raises_typed_error(self):
        from repro.errors import InvalidQueryError

        with pytest.raises(InvalidQueryError):
            main(["migrate", "--curve", "rowmajor", "--to", "onion",
                  "--side", "16", "--shapes", "20x1", "--queries", "5"])
        with pytest.raises(InvalidQueryError):
            main(["migrate", "--curve", "rowmajor", "--to", "onion",
                  "--side", "16", "--shapes", "8x8:0", "--queries", "5"])
        with pytest.raises(InvalidQueryError):
            main(["advise", "--side", "16", "--shapes", "8x8:-1,4x4:2"])

    def test_sharded_migration(self, capsys):
        assert main(["migrate", "--curve", "hilbert", "--to", "rowmajor",
                     "--side", "16", "--points", "300", "--shards", "4",
                     "--shapes", "16x1", "--queries", "15"]) == 0
        out = capsys.readouterr().out
        assert "4 shards" in out
        assert "migrated" in out


class TestRenderCommand:
    def test_render_keys(self, capsys):
        assert main(["render", "--curve", "onion", "--side", "4"]) == 0
        out = capsys.readouterr().out
        assert "15" in out

    def test_render_path(self, capsys):
        assert main(["render", "--curve", "hilbert", "--side", "4",
                     "--mode", "path"]) == 0
        out = capsys.readouterr().out
        assert "o" in out


class TestDurabilityCommands:
    def _seed(self, tmp_path, *extra):
        root = tmp_path / "store"
        assert main(["query", "--side", "8", "--points", "50",
                     "--rect", "1,1:6,6", "--durable", str(root), *extra]) == 0
        return root

    def test_recover_replays_a_durable_query_run(self, tmp_path, capsys):
        root = self._seed(tmp_path)
        assert main(["recover", "--path", str(root), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "recovered SFCIndex: 50 record(s)" in out
        assert "WAL frame(s) replayed" in out
        assert "verify: OK" in out

    def test_recover_sharded_store_reports_shards(self, tmp_path, capsys):
        root = self._seed(tmp_path, "--shards", "3")
        assert main(["recover", "--path", str(root)]) == 0
        out = capsys.readouterr().out
        assert "recovered ShardedSFCIndex" in out
        assert "3 shards" in out

    def test_checkpoint_then_recover_replays_no_frames(self, tmp_path, capsys):
        root = self._seed(tmp_path)
        assert main(["checkpoint", "--path", str(root), "--compact"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint generation 1" in out
        assert "WAL rotated" in out
        assert main(["recover", "--path", str(root), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out
        assert "0 WAL frame(s) replayed" in out
        assert "verify: OK" in out

    def test_recover_missing_store_raises_typed_error(self, tmp_path):
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            main(["recover", "--path", str(tmp_path / "nothing")])


class TestExperimentsDelegation:
    def test_experiments_subcommand(self, capsys):
        assert main(["experiments", "fig2"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["transmogrify"])
