"""The public API surface: imports, __all__ integrity, docstrings."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.curves",
    "repro.core",
    "repro.analysis",
    "repro.storage",
    "repro.index",
    "repro.engine",
    "repro.costmodel",
    "repro.engine.cost",
    "repro.engine.plan",
    "repro.engine.planner",
    "repro.engine.cache",
    "repro.engine.executor",
    "repro.engine.scatter",
    "repro.api",
    "repro.api.query",
    "repro.api.store",
    "repro.api.cursor",
    "repro.api.knn",
    "repro.index.partition",
    "repro.index.sharded",
    "repro.experiments",
    "repro.geometry",
    "repro.errors",
    "repro.visualize",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestModuleSurface:
    def test_imports(self, module_name):
        importlib.import_module(module_name)

    def test_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


class TestTopLevelApi:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_names_available(self):
        from repro import (  # noqa: F401
            Rect,
            SFCIndex,
            average_clustering,
            clustering_number,
            curve_names,
            make_curve,
            query_runs,
        )

    def test_engine_names_available(self):
        from repro import (  # noqa: F401
            BatchResult,
            CostModel,
            ExecutionPolicy,
            Executor,
            PlanCache,
            Planner,
            QueryPlan,
            RangeQueryResult,
        )

    def test_front_door_names_available(self):
        from repro import (  # noqa: F401
            Cursor,
            CursorStats,
            KNNResult,
            Query,
            QueryResult,
            RectUnion,
            SpatialStore,
        )

    def test_indexes_implement_the_store_protocol(self):
        from repro import SFCIndex, ShardedSFCIndex, SpatialStore

        assert issubclass(SFCIndex, SpatialStore)
        assert issubclass(ShardedSFCIndex, SpatialStore)

    def test_public_callables_have_docstrings(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_curve_classes_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_registry_covers_exported_curves(self):
        from repro import curve_names

        names = set(curve_names())
        assert {"onion", "hilbert", "peano", "zorder", "gray", "snake"} <= names
