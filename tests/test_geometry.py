"""Unit tests for :mod:`repro.geometry`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidQueryError, InvalidUniverseError, OutOfUniverseError
from repro.geometry import (
    Rect,
    all_translations,
    boundary_distance,
    cell_in_universe,
    check_cell,
    layer_side,
    num_layers,
    num_translations,
    validate_dim,
    validate_side,
)


class TestValidation:
    def test_validate_side_accepts_positive_ints(self):
        assert validate_side(1) == 1
        assert validate_side(1024) == 1024

    def test_validate_side_accepts_numpy_ints(self):
        assert validate_side(np.int64(8)) == 8

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "8", True])
    def test_validate_side_rejects(self, bad):
        with pytest.raises(InvalidUniverseError):
            validate_side(bad)

    @pytest.mark.parametrize("bad", [0, -3, 1.5, False])
    def test_validate_dim_rejects(self, bad):
        with pytest.raises(InvalidUniverseError):
            validate_dim(bad)

    def test_cell_in_universe(self):
        assert cell_in_universe((0, 0), 4, 2)
        assert cell_in_universe((3, 3), 4, 2)
        assert not cell_in_universe((4, 0), 4, 2)
        assert not cell_in_universe((0, -1), 4, 2)
        assert not cell_in_universe((0, 0, 0), 4, 2)

    def test_check_cell_roundtrip(self):
        assert check_cell([1, 2], 4, 2) == (1, 2)

    def test_check_cell_raises(self):
        with pytest.raises(OutOfUniverseError):
            check_cell((4, 0), 4, 2)


class TestLayers:
    def test_boundary_distance_corners_and_center(self):
        assert boundary_distance((0, 0), 8) == 1
        assert boundary_distance((7, 7), 8) == 1
        assert boundary_distance((3, 3), 8) == 4
        assert boundary_distance((3, 4), 8) == 4

    def test_boundary_distance_3d(self):
        assert boundary_distance((1, 3, 3), 8) == 2

    def test_num_layers(self):
        assert num_layers(8) == 4
        assert num_layers(7) == 4
        assert num_layers(1) == 1

    def test_layer_side(self):
        assert layer_side(8, 1) == 8
        assert layer_side(8, 4) == 2
        assert layer_side(7, 4) == 1


class TestRect:
    def test_from_origin(self):
        r = Rect.from_origin((1, 2), (3, 4))
        assert r.lo == (1, 2)
        assert r.hi == (3, 5)
        assert r.lengths == (3, 4)
        assert r.volume == 12

    def test_empty_rect_rejected(self):
        with pytest.raises(InvalidQueryError):
            Rect((2, 0), (1, 5))

    def test_zero_length_rejected(self):
        with pytest.raises(InvalidQueryError):
            Rect.from_origin((0, 0), (0, 3))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            Rect((0, 0), (1, 1, 1))

    def test_zero_dim_rejected(self):
        with pytest.raises(InvalidQueryError):
            Rect((), ())

    def test_contains(self):
        r = Rect((1, 1), (3, 3))
        assert r.contains((1, 1))
        assert r.contains((3, 3))
        assert not r.contains((0, 1))
        assert not r.contains((1, 4))
        assert not r.contains((1, 1, 1))

    def test_fits_in(self):
        r = Rect((0, 0), (7, 7))
        assert r.fits_in(8)
        assert not r.fits_in(7)
        with pytest.raises(InvalidQueryError):
            r.check_fits(7)

    def test_cells_enumeration_matches_volume(self):
        r = Rect((0, 1, 2), (1, 2, 4))
        cells = list(r.cells())
        assert len(cells) == r.volume
        assert len(set(cells)) == r.volume
        assert all(r.contains(c) for c in cells)

    def test_cells_array_matches_cells(self):
        r = Rect((2, 3), (5, 4))
        arr = r.cells_array()
        assert arr.shape == (r.volume, 2)
        assert set(map(tuple, arr.tolist())) == set(r.cells())

    def test_is_cube(self):
        assert Rect.from_origin((0, 0), (3, 3)).is_cube()
        assert not Rect.from_origin((0, 0), (3, 4)).is_cube()

    def test_translate(self):
        r = Rect((1, 1), (2, 2)).translate((3, -1))
        assert r.lo == (4, 0)
        assert r.hi == (5, 1)

    def test_faces_cover_adjacent_shell(self):
        r = Rect((2, 2), (4, 4))
        shells = list(r.faces(8))
        assert len(shells) == 4  # two per axis, none clipped
        for axis, direction, shell in shells:
            assert shell.lengths[axis] == 1

    def test_faces_clipped_at_universe_edge(self):
        r = Rect((0, 2), (4, 4))
        axes = [(a, d) for a, d, _ in r.faces(8)]
        assert (0, -1) not in axes  # clipped at x = 0
        assert (0, +1) in axes


class TestTranslations:
    def test_num_translations(self):
        assert num_translations(8, (3, 3)) == 36
        assert num_translations(8, (8, 8)) == 1
        assert num_translations(8, (9, 3)) == 0

    def test_all_translations_count_and_membership(self):
        rects = list(all_translations(6, (2, 3)))
        assert len(rects) == num_translations(6, (2, 3))
        assert all(r.fits_in(6) for r in rects)
        assert len({r.lo for r in rects}) == len(rects)

    @given(
        side=st.integers(2, 10),
        l1=st.integers(1, 10),
        l2=st.integers(1, 10),
    )
    def test_num_translations_matches_enumeration(self, side, l1, l2):
        expected = num_translations(side, (l1, l2))
        if expected == 0:
            assert l1 > side or l2 > side
        else:
            assert expected == sum(1 for _ in all_translations(side, (l1, l2)))
