"""The ``SpatialStore`` protocol: one facade, two conforming stores.

Pins the unification the api redesign promises: both index classes are
instances of the shared base, the hoisted facade behaves identically on
both (point lookups included — the seek-accounting regression), plain
queries return the legacy result types byte-for-byte, and the recorder
and plan cache see streamed queries exactly like materialized ones.
"""

import numpy as np
import pytest

from repro.adaptive import WorkloadRecorder
from repro.api import ANY, Query, QueryResult, SpatialStore
from repro.curves import make_curve
from repro.engine.executor import RangeQueryResult
from repro.engine.scatter import ShardedRangeQueryResult
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

SIDE = 16


def _points(count=200, seed=3):
    rng = np.random.default_rng(seed)
    points = [tuple(map(int, p)) for p in rng.integers(0, SIDE, size=(count, 2))]
    return points, list(range(count))


def _pair(recorder_single=None, recorder_sharded=None, **kwargs):
    single = SFCIndex(
        make_curve("onion", SIDE, 2),
        page_capacity=8,
        recorder=recorder_single,
        **kwargs,
    )
    sharded = ShardedSFCIndex(
        make_curve("onion", SIDE, 2),
        num_shards=3,
        page_capacity=8,
        max_workers=0,
        recorder=recorder_sharded,
        **kwargs,
    )
    points, payloads = _points()
    for store in (single, sharded):
        store.bulk_load(points, payloads)
        store.flush()
    return single, sharded


class TestProtocolConformance:
    def test_both_stores_implement_spatial_store(self):
        single, sharded = _pair()
        assert isinstance(single, SpatialStore)
        assert isinstance(sharded, SpatialStore)

    def test_the_base_is_abstract(self):
        with pytest.raises(TypeError):
            SpatialStore()

    def test_facade_surface_is_shared(self):
        for name in (
            "insert",
            "delete",
            "bulk_load",
            "point_query",
            "flush",
            "plan",
            "explain",
            "execute",
            "cursor",
            "knn",
            "range_query",
            "range_query_batch",
            "migrate_to",
        ):
            single_attr = getattr(SFCIndex, name)
            sharded_attr = getattr(ShardedSFCIndex, name)
            assert single_attr is getattr(SpatialStore, name), name
            assert sharded_attr is getattr(SpatialStore, name), name


class TestPointQuerySymmetry:
    def test_point_lookups_report_identical_seek_accounting(self):
        """Regression: point_query is one in-memory implementation —
        single and sharded stores return the same records and charge
        exactly the same (zero) disk I/O."""
        single, sharded = _pair()
        points, _ = _points()
        single.disk.reset_stats()
        sharded.disk.reset_stats()
        for point in points[:40] + [(0, 0), (SIDE - 1, SIDE - 1)]:
            a = single.point_query(point)
            b = sharded.point_query(point)
            assert a == b
        assert single.disk.stats.pages_read == 0
        assert sharded.disk.stats.pages_read == 0
        assert single.disk.stats.seeks == sharded.disk.stats.seeks == 0


class TestLegacyFacades:
    def test_plain_execute_returns_native_result_types(self):
        single, sharded = _pair()
        rect = Rect((2, 2), (11, 13))
        a = single.execute(Query.rect(rect))
        b = sharded.execute(Query.rect(rect))
        assert type(a) is RangeQueryResult
        assert type(b) is ShardedRangeQueryResult
        assert b.per_shard  # sharded attribution survives the front door
        assert a.records == b.records

    def test_range_query_facade_is_byte_identical_to_execute(self):
        single, _ = _pair()
        rect = Rect((1, 0), (9, 9))
        single.disk.reset_stats()
        via_facade = single.range_query(rect, gap_tolerance=2)
        single.disk.reset_stats()
        via_query = single.execute(Query.rect(rect).hint(gap_tolerance=2))
        assert via_facade.records == via_query.records
        assert via_facade.seeks == via_query.seeks
        assert via_facade.pages_read == via_query.pages_read
        assert via_facade.over_read == via_query.over_read

    def test_execute_accepts_a_bare_rect(self):
        single, _ = _pair()
        rect = Rect((0, 0), (5, 5))
        assert single.execute(rect).records == single.range_query(rect).records

    def test_rich_execute_returns_query_result(self):
        _, sharded = _pair()
        rect = Rect((0, 0), (12, 12))
        result = sharded.execute(
            Query.rect(rect).where(lambda r: r.payload % 2 == 0).limit(7)
        )
        assert isinstance(result, QueryResult)
        assert len(result) == 7
        assert all(r.payload % 2 == 0 for r in result.rows)
        assert result.truncated

    def test_mutations_through_the_shared_write_path(self):
        single, sharded = _pair()
        for store in (single, sharded):
            before = len(store)
            store.insert((3, 3), payload="new")
            assert len(store) == before + 1
            assert any(r.payload == "new" for r in store.point_query((3, 3)))
            assert store.delete((3, 3), payload="new")
            assert len(store) == before
            assert not store.delete((3, 3), payload="new")


class TestDeletePayloadMatching:
    """Regression: ``payload=None`` used to double as the match-any
    marker, so a record stored *with* ``payload=None`` could never be
    targeted specifically.  The :data:`repro.ANY` sentinel is now the
    default; ``delete(point)`` keeps its match-any meaning and
    ``delete(point, None)`` matches exactly the None-payload records.
    """

    def _stores(self):
        curve = make_curve("onion", SIDE, 2)
        return (
            SFCIndex(curve, page_capacity=8),
            ShardedSFCIndex(curve, num_shards=4, page_capacity=8),
        )

    def test_payload_none_records_are_targetable(self):
        for store in self._stores():
            store.insert((9, 9), None)
            store.insert((9, 9), "keep")
            assert store.delete((9, 9), None)
            payloads = [r.payload for r in store.point_query((9, 9))]
            assert payloads == ["keep"], payloads

    def test_delete_with_none_does_not_match_other_payloads(self):
        for store in self._stores():
            store.insert((9, 9), "only")
            assert not store.delete((9, 9), None)
            assert [r.payload for r in store.point_query((9, 9))] == ["only"]

    def test_bare_delete_still_matches_any(self):
        for store in self._stores():
            store.insert((9, 9), "a")
            store.insert((9, 9), None)
            assert store.delete((9, 9))
            assert store.delete((9, 9))
            assert not store.delete((9, 9))
            assert len(store) == 0

    def test_explicit_any_sentinel_matches_any(self):
        for store in self._stores():
            store.insert((9, 9), None)
            assert store.delete((9, 9), ANY)
            assert store.point_query((9, 9)) == []

    def test_any_repr_reads_like_the_export(self):
        assert repr(ANY) == "ANY"


class TestTelemetryAndCaching:
    def test_cursor_reports_to_the_recorder_like_execute(self):
        recorder_a, recorder_b = WorkloadRecorder(), WorkloadRecorder()
        single, _ = _pair(recorder_single=recorder_a)
        other = SFCIndex(
            make_curve("onion", SIDE, 2), page_capacity=8, recorder=recorder_b
        )
        points, payloads = _points()
        other.bulk_load(points, payloads)
        other.flush()
        rect = Rect((2, 2), (13, 13))

        single.disk.reset_stats()
        materialized = single.range_query(rect)
        other.disk.reset_stats()
        cursor = other.cursor(Query.rect(rect))
        cursor.fetchall()

        events_a = recorder_a.observations()
        events_b = recorder_b.observations()
        assert len(events_a) == len(events_b) == 1
        assert events_a[-1].seeks == events_b[-1].seeks == materialized.seeks
        assert events_a[-1].pages == events_b[-1].pages
        assert events_a[-1].records == events_b[-1].records

    def test_early_closed_cursor_records_partial_io(self):
        recorder = WorkloadRecorder()
        store = SFCIndex(
            make_curve("onion", SIDE, 2), page_capacity=8, recorder=recorder
        )
        points, payloads = _points()
        store.bulk_load(points, payloads)
        store.flush()
        full = store.range_query(Rect((0, 0), (SIDE - 1, SIDE - 1)))
        before = recorder.executed_events
        cursor = store.cursor(
            Query.rect(Rect((0, 0), (SIDE - 1, SIDE - 1))).limit(3)
        )
        cursor.fetchall()
        assert recorder.executed_events == before + 1
        event = recorder.observations()[-1]
        assert 0 < event.pages < full.pages_read

    def test_cursor_planning_hits_the_epoch_keyed_cache(self):
        single, sharded = _pair()
        for store in (single, sharded):
            rect = Rect((4, 4), (10, 12))
            store.cursor(Query.rect(rect)).fetchall()
            hits_before = store.plan_cache.stats.hits
            store.cursor(Query.rect(rect)).fetchall()
            assert store.plan_cache.stats.hits > hits_before
            # a write bumps the epoch at the next flush: stale plans die
            store.insert((0, 0))
            store.cursor(Query.rect(rect)).fetchall()
            assert store.epoch > 1

    def test_union_cursor_plans_each_member_through_the_cache(self):
        single, _ = _pair()
        rects = [Rect((0, 0), (4, 4)), Rect((8, 8), (12, 12))]
        single.execute(Query.union_of(rects))
        hits_before = single.plan_cache.stats.hits
        single.cursor(Query.union_of(rects)).fetchall()
        assert single.plan_cache.stats.hits >= hits_before + 2
