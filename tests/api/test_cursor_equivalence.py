"""Differential proof: streaming ``Cursor`` ≡ materialized execution.

The acceptance bar for the front door: a fully drained cursor must
charge *exactly* the records, seeks, pages and over-read of the legacy
materialized path — across curves, dimensions, shard counts 1–4, gap
policies, multi-rect unions, predicates and limits — while holding at
most one page of records at a time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Query
from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

CURVE_SPECS = [("onion", 2), ("hilbert", 2), ("zorder", 2), ("onion", 3)]
SIDE = {2: 16, 3: 8}
PAGE_CAPACITY = 8

#: Built stores are immutable after flush, so they are shared across
#: hypothesis examples (stats mutate, but equivalence is per-query).
_STORES = {}


def _grid_points(side, dim):
    """A deterministic, payload-carrying ~60% sample of the grid."""
    points, payloads = [], []
    total = side**dim
    for key in range(total):
        if key % 5 == 2:
            continue  # punch holes so pages span irregular key gaps
        cell = []
        rest = key
        for _ in range(dim):
            cell.append(rest % side)
            rest //= side
        points.append(tuple(cell))
        payloads.append(key)
    return points, payloads


def _store(name, dim, shards):
    spec = (name, dim, shards)
    store = _STORES.get(spec)
    if store is None:
        side = SIDE[dim]
        curve = make_curve(name, side, dim)
        if shards == 1:
            store = SFCIndex(curve, page_capacity=PAGE_CAPACITY)
        else:
            store = ShardedSFCIndex(
                curve, num_shards=shards, page_capacity=PAGE_CAPACITY, max_workers=0
            )
        store.bulk_load(*_grid_points(side, dim))
        store.flush()
        _STORES[spec] = store
    return store


@st.composite
def scenarios(draw):
    name, dim = draw(st.sampled_from(CURVE_SPECS))
    side = SIDE[dim]
    shards = draw(st.integers(min_value=1, max_value=4))
    rects = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        lo = tuple(draw(st.integers(0, side - 1)) for _ in range(dim))
        hi = tuple(min(side - 1, l + draw(st.integers(0, side // 2))) for l in lo)
        rects.append(Rect(lo, hi))
    gap = draw(st.sampled_from([0, 0, 3]))
    limit = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=40)))
    with_predicate = draw(st.booleans())
    return name, dim, shards, rects, gap, limit, with_predicate


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_cursor_streaming_equals_materialized(scenario):
    name, dim, shards, rects, gap, limit, with_predicate = scenario
    store = _store(name, dim, shards)
    plain = Query.union_of(rects).hint(gap_tolerance=gap)
    store.disk.reset_stats()  # park the head: seek accounting is stateful
    baseline = store.execute(plain)  # legacy materialized path

    query = plain
    predicate = (lambda record: record.point[0] % 2 == 0) if with_predicate else None
    if predicate is not None:
        query = query.where(predicate)
    if limit is not None:
        query = query.limit(limit)

    store.disk.reset_stats()
    cursor = store.cursor(query)
    rows = cursor.fetchall()
    stats = cursor.stats

    expected = [
        record
        for record in baseline.records
        if predicate is None or predicate(record)
    ]
    if limit is not None:
        expected = expected[:limit]
    assert rows == expected

    if limit is None:
        # Full drain: cost-identical to the materialized execution.
        assert stats.seeks == baseline.seeks
        assert stats.pages_read == baseline.pages_read
        assert stats.over_read == baseline.over_read
        assert stats.records_scanned == len(baseline.records)
    else:
        # Early exit may only save I/O, never add it.
        assert stats.seeks <= baseline.seeks
        assert stats.pages_read <= baseline.pages_read
    assert stats.peak_page_records <= PAGE_CAPACITY


@given(scenarios())
@settings(max_examples=30, deadline=None)
def test_union_execution_matches_oracle_and_single_index(scenario):
    """Plain unions dedupe overlaps and stay shard-transparent."""
    name, dim, shards, rects, gap, _, _ = scenario
    store = _store(name, dim, shards)
    single = _store(name, dim, 1)
    side = SIDE[dim]

    store.disk.reset_stats()
    result = store.execute(Query.union_of(rects).hint(gap_tolerance=gap))
    whole = Rect((0,) * dim, (side - 1,) * dim)
    oracle = [
        record
        for record in single.range_query(whole).records
        if any(rect.contains(record.point) for rect in rects)
    ]
    assert result.records == oracle  # key order, each record exactly once

    single.disk.reset_stats()
    baseline = single.execute(Query.union_of(rects).hint(gap_tolerance=gap))
    assert result.seeks == baseline.seeks
    assert result.pages_read == baseline.pages_read
    assert result.over_read == baseline.over_read


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_full_grid_scan_residency_is_one_page(shards):
    """Acceptance: O(page) peak residency on a full-grid streaming scan."""
    store = _store("onion", 2, shards)
    side = SIDE[2]
    whole = Rect((0, 0), (side - 1, side - 1))
    store.disk.reset_stats()
    baseline = store.range_query(whole)
    store.disk.reset_stats()
    cursor = store.cursor(Query.rect(whole))
    rows = cursor.fetchall()
    stats = cursor.stats
    assert rows == baseline.records
    assert stats.seeks == baseline.seeks
    assert stats.pages_read == baseline.pages_read
    assert stats.peak_page_records <= PAGE_CAPACITY
    assert len(baseline.records) > 10 * stats.peak_page_records


def test_limit_early_exit_reads_fewer_pages():
    store = _store("onion", 2, 1)
    side = SIDE[2]
    whole = Rect((0, 0), (side - 1, side - 1))
    full_pages = store.range_query(whole).pages_read
    cursor = store.cursor(Query.rect(whole).limit(5))
    rows = cursor.fetchall()
    assert len(rows) == 5
    assert cursor.stats.truncated
    assert cursor.stats.pages_read < full_pages
    assert cursor.stats.pages_read <= 1 + (5 + PAGE_CAPACITY - 1) // PAGE_CAPACITY


def test_limit_zero_reads_nothing():
    store = _store("hilbert", 2, 2)
    cursor = store.cursor(Query.rect(Rect((0, 0), (7, 7))).limit(0))
    assert cursor.fetchall() == []
    assert cursor.stats.pages_read == 0


def test_closed_cursor_stops_and_freezes_stats():
    store = _store("onion", 2, 1)
    side = SIDE[2]
    cursor = store.cursor(Query.rect(Rect((0, 0), (side - 1, side - 1))))
    first = next(cursor)
    assert first is not None
    cursor.close()
    pages_at_close = cursor.stats.pages_read
    remaining = cursor.fetchall()  # only what was already buffered
    assert len(remaining) < PAGE_CAPACITY
    assert cursor.stats.pages_read == pages_at_close


def test_limit_equal_to_result_count_is_not_truncated():
    """Regression: a limit landing exactly on the last row must not
    report truncation (nothing was cut off)."""
    store = _store("onion", 2, 1)
    rect = Rect((0, 0), (3, 3))
    total = len(store.range_query(rect).records)
    exact = store.cursor(Query.rect(rect).limit(total))
    assert len(exact.fetchall()) == total
    assert not exact.stats.truncated
    short = store.cursor(Query.rect(rect).limit(total - 1))
    assert len(short.fetchall()) == total - 1
    assert short.stats.truncated


def test_fetchmany_zero_fetches_nothing():
    """Regression: fetchmany(0) must not consume a row."""
    store = _store("onion", 2, 1)
    cursor = store.cursor(Query.rect(Rect((0, 0), (7, 7))))
    assert cursor.fetchmany(0) == []
    assert cursor.fetchmany(-3) == []
    assert cursor.stats.rows_yielded == 0
    first = cursor.fetchmany(1)
    assert len(first) == 1


def test_cursor_is_a_context_manager():
    store = _store("onion", 2, 2)
    with store.cursor(Query.rect(Rect((0, 0), (5, 5)))) as cursor:
        rows = cursor.fetchmany(3)
        assert len(rows) == 3
    assert cursor.closed
