"""Regression: the Cursor notifies the recorder exactly once, always.

The adaptive control plane budgets drift checks on
``recorder.executed_events``; a cursor that notifies twice (close after
drain) skews the histogram toward streamed shapes, and one that never
notifies (raising predicate, abandoned consumer) starves the detector.
These tests pin the exactly-once contract on every lifecycle path the
front door exposes — including the exception paths ``repro lint``'s
``notify-once`` rule guards statically.
"""

import gc

import pytest

from repro.adaptive import WorkloadRecorder
from repro.api import Query
from repro.curves import make_curve
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

SIDE = 16
RECT = Rect((0, 0), (11, 11))


class _Boom(RuntimeError):
    pass


def _store(shards, recorder):
    curve = make_curve("onion", SIDE, 2)
    if shards == 1:
        store = SFCIndex(curve, page_capacity=4, recorder=recorder)
    else:
        store = ShardedSFCIndex(
            curve,
            num_shards=shards,
            page_capacity=4,
            max_workers=0,
            recorder=recorder,
        )
    points = [(x, y) for x in range(SIDE) for y in range(SIDE) if (x + y) % 3]
    store.bulk_load(points, payloads=iter(range(len(points))))
    store.flush()
    recorder.clear()  # only cursor traffic counts in the assertions
    return store


@pytest.fixture(params=[1, 3], ids=["single", "sharded"])
def store_and_recorder(request):
    recorder = WorkloadRecorder()
    return _store(request.param, recorder), recorder


def test_drain_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder
    cursor = store.cursor(Query.rect(RECT))
    rows = cursor.fetchall()
    assert rows
    assert recorder.executed_events == 1


def test_drain_then_close_does_not_double_notify(store_and_recorder):
    store, recorder = store_and_recorder
    cursor = store.cursor(Query.rect(RECT))
    cursor.fetchall()
    cursor.close()
    cursor.close()
    assert recorder.executed_events == 1


def test_early_close_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder
    cursor = store.cursor(Query.rect(RECT))
    next(iter(cursor))
    cursor.close()
    cursor.close()
    assert recorder.executed_events == 1


def test_limit_early_exit_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder
    rows = store.cursor(Query.rect(RECT).limit(3)).fetchall()
    assert len(rows) == 3
    assert recorder.executed_events == 1


def test_raising_predicate_closes_and_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder

    def predicate(record):
        raise _Boom("user predicate exploded")

    cursor = store.cursor(Query.rect(RECT).where(predicate))
    with pytest.raises(_Boom):
        next(iter(cursor))
    # The raise must close the cursor deterministically — not leave the
    # notification to whenever GC finalizes the underlying generator.
    assert cursor.closed
    assert recorder.executed_events == 1
    cursor.close()
    assert recorder.executed_events == 1


def test_raising_projection_closes_and_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder

    def projection(record):
        raise _Boom("user projection exploded")

    cursor = store.cursor(Query.rect(RECT).select(projection))
    with pytest.raises(_Boom):
        next(iter(cursor))
    assert cursor.closed
    assert recorder.executed_events == 1


def test_predicate_raising_mid_stream_after_rows(store_and_recorder):
    """The predicate passes for a while, then raises: rows already
    yielded stay yielded, the failure closes the stream, one notify."""
    store, recorder = store_and_recorder
    seen = []

    def predicate(record):
        if len(seen) >= 5:
            raise _Boom("flaked after five")
        seen.append(record)
        return True

    cursor = store.cursor(Query.rect(RECT).where(predicate))
    rows = []
    with pytest.raises(_Boom):
        for row in cursor:
            rows.append(row)
    assert cursor.closed
    assert recorder.executed_events == 1


def test_abandoned_cursor_notifies_once_on_gc(store_and_recorder):
    store, recorder = store_and_recorder
    cursor = store.cursor(Query.rect(RECT))
    next(iter(cursor))  # pull one row, then walk away
    del cursor
    gc.collect()
    assert recorder.executed_events == 1


def test_context_manager_exit_notifies_once(store_and_recorder):
    store, recorder = store_and_recorder
    with pytest.raises(_Boom):
        with store.cursor(Query.rect(RECT)) as cursor:
            next(iter(cursor))
            raise _Boom("consumer body failed")
    assert cursor.closed
    assert recorder.executed_events == 1
