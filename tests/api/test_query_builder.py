"""The immutable ``Query`` builder and the ``RectUnion`` region."""

import pytest

from repro.api import Query, RectUnion
from repro.engine.plan import ExecutionPolicy
from repro.errors import InvalidQueryError
from repro.geometry import Rect

R1 = Rect((0, 0), (3, 3))
R2 = Rect((2, 2), (6, 7))


class TestConstruction:
    def test_rect_from_rect(self):
        q = Query.rect(R1)
        assert q.rects == (R1,)
        assert q.is_plain

    def test_rect_from_corners(self):
        assert Query.rect((0, 0), (3, 3)).rects == (R1,)

    def test_rect_rejects_non_rect(self):
        with pytest.raises(InvalidQueryError):
            Query.rect((0, 0))

    def test_union_of(self):
        q = Query.union_of([R1, R2])
        assert q.rects == (R1, R2)
        assert isinstance(q.region, RectUnion)

    def test_single_rect_region_is_the_rect(self):
        assert Query.rect(R1).region is R1

    def test_empty_union_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.union_of([])

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.union_of([R1, Rect((0, 0, 0), (1, 1, 1))])

    def test_of_coerces_rect_and_passes_query(self):
        q = Query.rect(R1)
        assert Query.of(q) is q
        assert Query.of(R1).rects == (R1,)
        with pytest.raises(InvalidQueryError):
            Query.of("not a query")


class TestBuilderImmutability:
    def test_each_step_returns_a_new_query(self):
        base = Query.rect(R1)
        limited = base.limit(5)
        filtered = limited.where(lambda r: True)
        projected = filtered.select(lambda r: r.point)
        hinted = projected.hint(gap_tolerance=4)
        assert base.max_rows is None and base.predicate is None
        assert limited.max_rows == 5 and limited is not base
        assert filtered.predicate is not None
        assert projected.projection is not None
        assert hinted.policy == ExecutionPolicy(gap_tolerance=4)
        # the earlier stages kept their hints
        assert projected.policy == ExecutionPolicy()

    def test_where_composes_conjunctively(self):
        class R:
            def __init__(self, point):
                self.point = point

        q = (
            Query.rect(R1)
            .where(lambda r: r.point[0] > 0)
            .where(lambda r: r.point[1] > 1)
        )
        assert q.admits(R((1, 2)))
        assert not q.admits(R((0, 2)))
        assert not q.admits(R((1, 0)))

    def test_policy_hint_wins_over_gap(self):
        policy = ExecutionPolicy(gap_tolerance=9)
        q = Query.rect(R1).hint(gap_tolerance=1, policy=policy)
        assert q.policy is policy

    def test_plainness(self):
        assert Query.union_of([R1, R2]).hint(gap_tolerance=3).is_plain
        assert not Query.rect(R1).limit(1).is_plain
        assert not Query.rect(R1).where(lambda r: True).is_plain
        assert not Query.rect(R1).select(lambda r: r.point).is_plain

    def test_negative_limit_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query.rect(R1).limit(-1)

    def test_row_applies_projection(self):
        class R:
            point = (1, 2)

        q = Query.rect(R1).select(lambda r: r.point)
        assert q.row(R()) == (1, 2)
        assert Query.rect(R1).row("record") == "record"


class TestRectUnion:
    def test_contains_is_the_union(self):
        union = RectUnion((R1, R2))
        assert union.contains((0, 0))
        assert union.contains((6, 7))
        assert union.contains((2, 2))  # in both
        assert not union.contains((6, 0))

    def test_bounding_box_telemetry(self):
        union = RectUnion((R1, R2))
        assert union.lo == (0, 0)
        assert union.hi == (6, 7)
        assert union.lengths == (7, 8)
        assert union.dim == 2

    def test_fits_in(self):
        union = RectUnion((R1, R2))
        assert union.fits_in(8)
        assert not union.fits_in(6)

    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            RectUnion(())
        with pytest.raises(InvalidQueryError):
            RectUnion((R1, Rect((0, 0, 0), (1, 1, 1))))

    def test_str_mentions_every_rect(self):
        text = str(RectUnion((R1, R2)))
        assert str(R1) in text and str(R2) in text
