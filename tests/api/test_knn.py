"""kNN differential tests: expanding range search vs a brute-force oracle.

Every configuration — curves × dimensions (2-d and 3-d) × k × metric ×
shard counts — must return exactly the distances a brute-force scan of
all stored records produces, in ascending order, with deterministic tie
breaking shared by single and sharded stores.
"""

import math

import numpy as np
import pytest

from repro.api import KNNResult, knn_search
from repro.curves import make_curve
from repro.errors import InvalidQueryError, OutOfUniverseError
from repro.geometry import Rect
from repro.index import SFCIndex, ShardedSFCIndex

SIDE = {2: 16, 3: 8}


def _points(side, dim, count, seed):
    rng = np.random.default_rng(seed)
    return [tuple(map(int, p)) for p in rng.integers(0, side, size=(count, dim))]


def _build(name, dim, shards, seed=11, count=150):
    side = SIDE[dim]
    curve = make_curve(name, side, dim)
    if shards == 1:
        store = SFCIndex(curve, page_capacity=8)
    else:
        store = ShardedSFCIndex(
            curve, num_shards=shards, page_capacity=8, max_workers=0
        )
    store.bulk_load(_points(side, dim, count, seed))
    store.flush()
    return store


def _brute_force(store, point, k, metric="euclidean"):
    """Oracle: distances of the k nearest records by exhaustive scan."""
    side = store.curve.side
    dim = store.curve.dim
    whole = Rect((0,) * dim, (side - 1,) * dim)
    distances = []
    for record in store.range_query(whole).records:
        deltas = [abs(a - b) for a, b in zip(record.point, point)]
        if metric == "euclidean":
            distances.append(math.sqrt(sum(d * d for d in deltas)))
        elif metric == "manhattan":
            distances.append(float(sum(deltas)))
        else:
            distances.append(float(max(deltas)))
    return sorted(distances)[:k]


class TestAgainstOracle:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "rowmajor"])
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_2d_matches_brute_force(self, name, k):
        store = _build(name, 2, shards=1)
        for point in [(0, 0), (5, 5), (15, 3), (8, 15)]:
            result = store.knn(point, k)
            assert list(result.distances) == pytest.approx(
                _brute_force(store, point, k)
            )
            assert list(result.distances) == sorted(result.distances)

    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder"])
    @pytest.mark.parametrize("k", [1, 5])
    def test_3d_matches_brute_force(self, name, k):
        store = _build(name, 3, shards=1)
        for point in [(0, 0, 0), (3, 4, 5), (7, 7, 7)]:
            result = store.knn(point, k)
            assert list(result.distances) == pytest.approx(
                _brute_force(store, point, k)
            )

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "chebyshev"])
    def test_metrics_match_brute_force(self, metric):
        store = _build("onion", 2, shards=1)
        result = store.knn((6, 9), 6, metric=metric)
        assert result.metric == metric
        assert list(result.distances) == pytest.approx(
            _brute_force(store, (6, 9), 6, metric)
        )

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_sharded_equals_single(self, shards):
        single = _build("onion", 2, shards=1)
        sharded = _build("onion", 2, shards=shards)
        for point in [(2, 2), (10, 13), (15, 0)]:
            a = single.knn(point, 8)
            b = sharded.knn(point, 8)
            assert a.distances == b.distances
            assert [n.record.point for n in a.neighbors] == [
                n.record.point for n in b.neighbors
            ]


class TestSemantics:
    def test_k_larger_than_store_returns_everything(self):
        store = _build("onion", 2, shards=1, count=12)
        result = store.knn((4, 4), 50)
        assert len(result) == len(store)
        assert list(result.distances) == pytest.approx(
            _brute_force(store, (4, 4), 50)
        )

    def test_k_zero_is_empty_and_free(self):
        store = _build("onion", 2, shards=1)
        result = store.knn((4, 4), 0)
        assert result.neighbors == ()
        assert result.expansions == 0
        assert result.pages_read == 0

    def test_empty_store(self):
        store = SFCIndex(make_curve("onion", 8, 2), page_capacity=4)
        result = store.knn((1, 1), 3)
        assert result.neighbors == ()

    def test_exact_hits_and_duplicates_come_first(self):
        store = SFCIndex(make_curve("hilbert", 16, 2), page_capacity=4)
        store.bulk_load([(5, 5), (5, 5), (6, 5), (0, 0)], payloads=["a", "b", "c", "d"])
        result = store.knn((5, 5), 3)
        assert result.distances == (0.0, 0.0, 1.0)
        assert {n.record.payload for n in result.neighbors[:2]} == {"a", "b"}

    def test_expansions_are_logarithmic(self):
        store = _build("onion", 2, shards=1)
        result = store.knn((8, 8), 3)
        assert 1 <= result.expansions <= math.ceil(math.log2(SIDE[2])) + 1

    def test_result_shape(self):
        store = _build("onion", 2, shards=1)
        result = store.knn((3, 3), 2)
        assert isinstance(result, KNNResult)
        assert result.records == tuple(n.record for n in result.neighbors)
        assert result.cost() > 0
        assert result.records_scanned >= len(result)

    def test_invalid_arguments(self):
        store = _build("onion", 2, shards=1)
        with pytest.raises(InvalidQueryError):
            store.knn((1, 1), -1)
        with pytest.raises(InvalidQueryError):
            store.knn((1, 1), 3, metric="cosine")
        with pytest.raises(OutOfUniverseError):
            store.knn((99, 99), 3)

    def test_function_form_matches_method(self):
        store = _build("onion", 2, shards=1)
        assert knn_search(store, (4, 4), 3).distances == store.knn((4, 4), 3).distances
