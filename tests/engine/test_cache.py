"""PlanCache: LRU behavior, keying, and index-level invalidation."""

import pytest

from repro.curves import make_curve
from repro.engine import ExecutionPolicy, PlanCache, Planner
from repro.errors import StorageError
from repro.geometry import Rect
from repro.index import SFCIndex


def make_plan(rect=Rect((0, 0), (3, 3)), side=8):
    curve = make_curve("onion", side, 2)
    return curve, Planner(curve).plan(rect)


class TestLru:
    def test_get_put_roundtrip(self):
        cache = PlanCache(capacity=4)
        curve, plan = make_plan()
        key = (curve, plan.rect, plan.policy)
        assert cache.get(key) is None
        cache.put(key, plan)
        assert cache.get(key) is plan
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_evicts_least_recent(self):
        cache = PlanCache(capacity=2)
        curve = make_curve("onion", 8, 2)
        planner = Planner(curve)
        rects = [Rect((i, 0), (i, 0)) for i in range(3)]
        keys = [(curve, r, ExecutionPolicy()) for r in rects]
        for k, r in zip(keys, rects):
            cache.put(k, planner.plan(r))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        curve = make_curve("onion", 8, 2)
        planner = Planner(curve)
        keys = [(curve, Rect((i, 0), (i, 0)), ExecutionPolicy()) for i in range(3)]
        cache.put(keys[0], planner.plan(keys[0][1]))
        cache.put(keys[1], planner.plan(keys[1][1]))
        cache.get(keys[0])  # 0 becomes most recent
        cache.put(keys[2], planner.plan(keys[2][1]))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None  # 1 was the LRU entry

    def test_invalid_capacity_rejected(self):
        with pytest.raises(StorageError):
            PlanCache(capacity=0)

    def test_hit_rate(self):
        cache = PlanCache()
        assert cache.stats.hit_rate == 0.0
        curve, plan = make_plan()
        key = (curve, plan.rect, plan.policy)
        cache.put(key, plan)
        cache.get(key)
        cache.get((curve, Rect((1, 1), (2, 2)), plan.policy))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestKeying:
    def test_policy_distinguishes_entries(self):
        index = SFCIndex(make_curve("hilbert", 16, 2), page_capacity=4)
        index.bulk_load([(x, y) for x in range(16) for y in range(16)])
        index.flush()
        rect = Rect((1, 1), (12, 12))
        exact = index.plan(rect)
        merged = index.plan(rect, gap_tolerance=32)
        assert exact is not merged
        assert index.plan(rect) is exact
        assert index.plan(rect, gap_tolerance=32) is merged

    def test_equal_rects_share_entry(self):
        index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4)
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        assert index.plan(Rect((1, 1), (5, 5))) is index.plan(Rect((1, 1), (5, 5)))


class TestIndexIntegration:
    def build(self, **kwargs):
        index = SFCIndex(make_curve("onion", 8, 2), page_capacity=4, **kwargs)
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        return index

    def test_reflush_invalidates_cached_plans(self):
        index = self.build()
        rect = Rect((1, 1), (5, 5))
        stale = index.plan(rect)
        index.insert((0, 0), payload="late")  # layout becomes stale
        fresh = index.plan(rect)  # auto-reflush must re-plan
        assert fresh is not stale
        assert index.plan_cache.stats.invalidations >= 1

    def test_cache_disabled_when_size_zero(self):
        index = self.build(plan_cache_size=0)
        rect = Rect((1, 1), (5, 5))
        assert index.plan_cache is None
        assert index.plan(rect) is not index.plan(rect)
        # results are unaffected by the missing cache
        assert len(index.range_query(rect).records) == rect.volume

    def test_repeated_workload_mostly_hits(self, rng):
        index = self.build()
        rects = [
            Rect.from_origin((int(x), int(y)), (2, 2))
            for x, y in rng.integers(0, 6, size=(10, 2))
        ]
        for _ in range(20):
            for rect in rects:
                index.plan(rect)
        stats = index.plan_cache.stats
        assert stats.hit_rate > 0.9
