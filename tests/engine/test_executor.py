"""Executor: facade equivalence with the pre-engine scan, batch execution."""

import bisect

import numpy as np
import pytest

from repro.core.runs import merge_runs_with_gaps, query_runs
from repro.curves import make_curve
from repro.engine import ExecutionPolicy
from repro.geometry import Rect
from repro.index import SFCIndex


def build_index(name, side, points, page_capacity=8, **kwargs):
    index = SFCIndex(make_curve(name, side, 2), page_capacity=page_capacity, **kwargs)
    index.bulk_load([tuple(p) for p in points], payloads=range(len(points)))
    index.flush()
    return index


def seed_range_query(index, rect, gap_tolerance=0):
    """The pre-engine ``SFCIndex.range_query`` loop, verbatim.

    Replayed against the index internals so the facade can be checked
    byte-for-byte (records *and* their order, plus every I/O counter).
    """
    rect.check_fits(index.curve.side)
    directory = index.page_layout
    runs = query_runs(index.curve, rect)
    scan_runs = merge_runs_with_gaps(runs, gap_tolerance) if gap_tolerance else runs
    seeks_before = index.disk.stats.seeks
    seq_before = index.disk.stats.sequential_reads
    reader = index.buffer_pool.read if index.buffer_pool is not None else index.disk.read
    records = []
    over_read = 0
    for start, end in scan_runs:
        page_pos = bisect.bisect_left(directory.first_keys, start) - 1
        page_pos = max(page_pos, 0)
        while page_pos < len(directory.page_ids):
            first_key = directory.first_keys[page_pos]
            if first_key > end:
                break
            page = reader(directory.page_ids[page_pos])
            if page[-1][0] >= start:
                for key, record in page:
                    if start <= key <= end:
                        if rect.contains(record.point):
                            records.append(record)
                        else:
                            over_read += 1
            if page[-1][0] > end:
                break
            page_pos += 1
    return (
        records,
        len(scan_runs),
        index.disk.stats.seeks - seeks_before,
        index.disk.stats.sequential_reads - seq_before,
        over_read,
    )


class TestFacadeEquivalence:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder"])
    @pytest.mark.parametrize("gap", [0, 6, 50])
    def test_range_query_identical_to_seed_scan(self, name, gap, rng):
        """Acceptance: the facade reproduces the pre-engine behavior
        byte for byte — same records in the same order, same counters."""
        points = rng.integers(0, 16, size=(400, 2))
        via_engine = build_index(name, 16, points)
        reference = build_index(name, 16, points)
        for _ in range(25):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 9, size=2), 15)
            rect = Rect(tuple(int(l) for l in lo), tuple(int(h) for h in hi))
            result = via_engine.range_query(rect, gap_tolerance=gap)
            records, runs, seeks, sequential, over = seed_range_query(
                reference, rect, gap_tolerance=gap
            )
            assert result.records == records  # identical order, not just set
            assert result.runs == runs
            assert result.over_read == over
            # exact page spans may skip the seed's speculative extra read
            # before a page-aligned run start, never add pages
            assert result.pages_read <= seeks + sequential

    def test_facade_equivalence_with_buffer_pool(self, rng):
        points = rng.integers(0, 16, size=(300, 2))
        via_engine = build_index("hilbert", 16, points, buffer_pages=16)
        reference = build_index("hilbert", 16, points, buffer_pages=16)
        for _ in range(20):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 7, size=2), 15)
            rect = Rect(tuple(int(l) for l in lo), tuple(int(h) for h in hi))
            result = via_engine.range_query(rect)
            records, runs, seeks, sequential, over = seed_range_query(reference, rect)
            assert result.records == records
            assert result.pages_read <= seeks + sequential


class TestBatchExecution:
    def test_batch_results_keep_caller_order(self, rng):
        points = rng.integers(0, 16, size=(400, 2))
        index = build_index("onion", 16, points)
        rects = [
            Rect.from_origin((int(x), int(y)), (3, 3))
            for x, y in rng.integers(0, 13, size=(30, 2))
        ]
        batch = index.range_query_batch(rects)
        assert len(batch.results) == len(rects)
        for rect, result in zip(rects, batch.results):
            expected = sorted(
                i for i, p in enumerate(points) if rect.contains(tuple(p))
            )
            assert sorted(r.payload for r in result.records) == expected

    def test_executed_order_sorted_by_first_key(self, rng):
        points = rng.integers(0, 16, size=(300, 2))
        index = build_index("hilbert", 16, points)
        rects = [
            Rect.from_origin((int(x), int(y)), (2, 2))
            for x, y in rng.integers(0, 14, size=(20, 2))
        ]
        batch = index.range_query_batch(rects)
        plans = [index.plan(r) for r in rects]  # cache returns the same plans
        first_keys = [plans[i].first_key for i in batch.executed_order]
        assert first_keys == sorted(first_keys)

    def test_aggregate_counters_sum_results(self, rng):
        points = rng.integers(0, 16, size=(300, 2))
        index = build_index("zorder", 16, points)
        rects = [
            Rect.from_origin((int(x), int(y)), (4, 4))
            for x, y in rng.integers(0, 12, size=(25, 2))
        ]
        batch = index.range_query_batch(rects, gap_tolerance=4)
        assert batch.total_seeks == sum(r.seeks for r in batch.results)
        assert batch.total_sequential_reads == sum(
            r.sequential_reads for r in batch.results
        )
        assert batch.total_over_read == sum(r.over_read for r in batch.results)
        assert batch.total_pages_read == batch.total_seeks + batch.total_sequential_reads
        assert batch.total_records == sum(len(r.records) for r in batch.results)
        assert batch.cost() == pytest.approx(
            sum(r.cost() for r in batch.results)
        )

    def test_batch_beats_loop_on_500_rect_workload(self, rng):
        """Acceptance: >= 500 rects batched need fewer total seeks than
        the equivalent query-at-a-time loop."""
        points = rng.integers(0, 32, size=(2000, 2))
        index = build_index("hilbert", 32, points, page_capacity=4)
        a = rng.integers(0, 32, size=(500, 2))
        b = rng.integers(0, 32, size=(500, 2))
        rects = [
            Rect(tuple(map(int, np.minimum(x, y))), tuple(map(int, np.maximum(x, y))))
            for x, y in zip(a, b)
        ]
        index.disk.reset_stats()
        loop_seeks = sum(index.range_query(r).seeks for r in rects)
        index.disk.reset_stats()
        batch = index.range_query_batch(rects)
        assert batch.total_seeks < loop_seeks
        # batching trades nothing for correctness
        for rect, result in zip(rects, batch.results):
            assert len(result.records) == sum(
                1 for p in points if rect.contains(tuple(p))
            )

    def test_batch_with_policy_object(self):
        index = build_index("hilbert", 16, [(x, y) for x in range(16) for y in range(16)])
        rects = [Rect((1, 1), (12, 12)), Rect((3, 2), (14, 10))]
        batch = index.range_query_batch(rects, policy=ExecutionPolicy(gap_tolerance=16))
        assert batch.total_over_read > 0
        for rect, result in zip(rects, batch.results):
            assert len(result.records) == rect.volume

    def test_empty_batch(self):
        index = build_index("onion", 8, [(0, 0), (1, 1)])
        batch = index.range_query_batch([])
        assert batch.results == []
        assert batch.total_seeks == 0
        assert batch.total_records == 0


class TestBufferPoolWiring:
    """The executor's optional page cache (pool=...) and its accounting."""

    def test_pool_reader_is_default_when_pool_given(self):
        from repro.engine import Executor
        from repro.storage.buffer import BufferPool

        index = build_index(
            "onion", 16, [(x, y) for x in range(16) for y in range(16)]
        )
        pool = BufferPool(index.disk, capacity=128)
        executor = Executor(index.disk, index.page_layout, pool=pool)
        plan = index.plan(Rect((2, 2), (9, 9)))
        cold = executor.execute(plan)
        assert pool.stats.misses == cold.pages_read > 0
        # Warm pass: every page resident, nothing reaches the disk.
        index.disk.reset_stats()
        warm = executor.execute(plan)
        assert warm.records == cold.records
        assert warm.pages_read == 0
        assert pool.stats.hits >= cold.pages_read

    def test_explicit_reader_wins_over_pool(self):
        from repro.adaptive import WorkloadRecorder
        from repro.engine import Executor
        from repro.storage.buffer import BufferPool

        index = build_index("onion", 8, [(x, y) for x in range(8) for y in range(8)])
        pool = BufferPool(index.disk, capacity=64)
        recorder = WorkloadRecorder()
        executor = Executor(
            index.disk, index.page_layout, reader=index.disk.read, pool=pool,
            recorder=recorder,
        )
        executor.execute(index.plan(Rect((1, 1), (5, 5))))
        assert pool.stats.accesses == 0  # the pool was bypassed by the reader
        # A bypassed pool must not fake "fully warm" cold-miss telemetry.
        assert recorder.observations()[-1].cold_misses is None

    def test_index_buffer_pages_served_through_pool(self):
        index = build_index(
            "onion", 16, [(x, y) for x in range(16) for y in range(16)],
            buffer_pages=256,
        )
        rect = Rect((3, 3), (12, 12))
        first = index.range_query(rect)
        assert first.pages_read > 0
        second = index.range_query(rect)
        assert second.records == first.records
        assert second.pages_read == 0  # warm pages never touch the disk
