"""Unit tests for the scatter–gather engine half (repro.engine.scatter)."""

import numpy as np
import pytest

from repro.curves import make_curve
from repro.engine import ExecutionPolicy, Planner
from repro.engine.scatter import (
    ScatterGatherExecutor,
    ShardedPlanner,
    clip_runs,
    makespan,
)
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import ShardedSFCIndex, equal_key_shards


# ----------------------------------------------------------------------
# clip_runs
# ----------------------------------------------------------------------
class TestClipRuns:
    def test_clips_to_interval(self):
        assert clip_runs([(0, 10)], (3, 7)) == [(3, 7)]
        assert clip_runs([(0, 10)], (0, 10)) == [(0, 10)]

    def test_drops_disjoint_runs(self):
        assert clip_runs([(0, 2), (8, 9)], (3, 7)) == []

    def test_boundary_touching_runs_survive(self):
        # Runs ending exactly at the shard's first key / starting at its last.
        assert clip_runs([(0, 3), (7, 9)], (3, 7)) == [(3, 3), (7, 7)]

    def test_clips_preserve_coverage(self):
        runs = [(2, 5), (9, 14), (20, 20)]
        shards = [(0, 4), (5, 11), (12, 30)]
        clipped = [run for shard in shards for run in clip_runs(runs, shard)]
        covered = sorted(k for start, end in clipped for k in range(start, end + 1))
        expected = sorted(k for start, end in runs for k in range(start, end + 1))
        assert covered == expected  # nothing lost, nothing duplicated


# ----------------------------------------------------------------------
# makespan
# ----------------------------------------------------------------------
class TestMakespan:
    def test_empty_is_zero(self):
        assert makespan([]) == 0.0

    def test_unbounded_workers_is_max(self):
        assert makespan([3.0, 5.0, 1.0]) == 5.0
        assert makespan([3.0, 5.0, 1.0], workers=10) == 5.0

    def test_single_worker_is_sum(self):
        assert makespan([3.0, 5.0, 1.0], workers=1) == 9.0

    def test_two_workers_balance(self):
        # LPT: 5 | 3 + 1 -> makespan 5.
        assert makespan([3.0, 5.0, 1.0], workers=2) == 5.0

    def test_monotone_in_workers(self):
        costs = [7.0, 3.0, 3.0, 2.0, 1.0]
        spans = [makespan(costs, workers=w) for w in (1, 2, 3, 4, 5)]
        assert spans == sorted(spans, reverse=True)

    def test_rejects_zero_workers(self):
        with pytest.raises(InvalidQueryError):
            makespan([1.0], workers=0)


# ----------------------------------------------------------------------
# ShardedPlanner
# ----------------------------------------------------------------------
class TestShardedPlanner:
    def setup_method(self):
        self.curve = make_curve("onion", 8, 2)
        self.shards = equal_key_shards(self.curve, 4)
        self.planner = ShardedPlanner(self.curve, self.shards)

    def test_global_plan_matches_single_node_planner(self):
        rect = Rect((1, 1), (6, 6))
        splan = self.planner.plan(rect)
        single = Planner(self.curve).plan(rect)
        assert splan.plan.runs == single.runs
        assert splan.plan.scan_runs == single.scan_runs
        assert splan.estimated_seeks == single.estimated_seeks

    def test_fragments_tile_the_runs(self):
        rect = Rect((0, 0), (7, 7))
        splan = self.planner.plan(rect)
        assert splan.shards_touched == 4
        covered = sorted(
            run for fragment in splan.fragments for run in fragment.plan.scan_runs
        )
        keys = [k for start, end in covered for k in range(start, end + 1)]
        expected = [
            k for start, end in splan.plan.scan_runs for k in range(start, end + 1)
        ]
        assert keys == sorted(expected)

    def test_untouched_shards_have_no_fragment(self):
        rect = Rect((0, 0), (0, 0))  # single cell -> single shard
        splan = self.planner.plan(rect)
        assert splan.shards_touched == 1

    def test_gap_merging_happens_before_clipping(self):
        rect = Rect((0, 1), (6, 7))
        policy = ExecutionPolicy(gap_tolerance=self.curve.size)
        splan = self.planner.plan(rect, policy)
        # One merged global run; its fragments are per-shard clips of it.
        assert len(splan.plan.scan_runs) == 1
        assert splan.shards_touched >= 1
        for fragment in splan.fragments:
            lo, hi = fragment.shard
            for start, end in fragment.plan.scan_runs:
                assert lo <= start <= end <= hi

    def test_estimated_cost_adds_fanout_penalty(self):
        rect = Rect((0, 0), (7, 7))
        splan = self.planner.plan(rect)
        base = splan.plan.estimated_cost()
        assert splan.estimated_cost() == pytest.approx(
            base + splan.fanout_cost * splan.shards_touched
        )

    def test_parallel_cost_between_max_and_serial(self):
        rect = Rect((0, 0), (7, 7))
        splan = self.planner.plan(rect)
        fanout = splan.fanout_cost * splan.shards_touched
        frag_costs = [f.plan.estimated_cost() for f in splan.fragments]
        assert splan.estimated_parallel_cost() == pytest.approx(
            fanout + max(frag_costs)
        )
        assert splan.estimated_parallel_cost(workers=1) == pytest.approx(
            fanout + sum(frag_costs)
        )

    def test_explain_mentions_every_touched_shard(self):
        text = self.planner.plan(Rect((0, 0), (7, 7))).explain()
        assert "ShardedPlan" in text
        assert "4 touched of 4" in text
        for shard_id in range(4):
            assert f"shard {shard_id} keys" in text

    def test_rejects_bad_shard_maps(self):
        with pytest.raises(InvalidQueryError):
            ShardedPlanner(self.curve, [])
        with pytest.raises(InvalidQueryError):
            ShardedPlanner(self.curve, [(0, 10)])  # does not cover key space
        with pytest.raises(InvalidQueryError):
            ShardedPlanner(self.curve, [(0, 10), (12, 63)])  # gap at 11
        with pytest.raises(InvalidQueryError):
            ShardedPlanner(self.curve, [(0, 40), (30, 63)])  # overlap
        with pytest.raises(InvalidQueryError):
            # Degenerate inverted first shard (-1 + 1 == 0 fools a
            # contiguity-only check).
            ShardedPlanner(self.curve, [(0, -1), (0, 63)])

    def test_rejects_negative_fanout(self):
        with pytest.raises(InvalidQueryError):
            ShardedPlanner(self.curve, self.shards, fanout_cost=-1.0)


# ----------------------------------------------------------------------
# ScatterGatherExecutor
# ----------------------------------------------------------------------
def _sharded_index(num_shards=4, max_workers=None, side=16, points=300, seed=5):
    curve = make_curve("hilbert", side, 2)
    index = ShardedSFCIndex(
        curve, num_shards=num_shards, page_capacity=4, max_workers=max_workers
    )
    rng = np.random.default_rng(seed)
    index.bulk_load(map(tuple, rng.integers(0, side, size=(points, 2))))
    index.flush()
    return index


class TestScatterGatherExecutor:
    def test_records_arrive_in_global_key_order(self):
        index = _sharded_index()
        result = index.range_query(Rect((2, 2), (13, 13)))
        keys = [index.curve.index(r.point) for r in result.records]
        assert keys == sorted(keys)

    def test_per_shard_stats_sum_to_the_gather(self):
        index = _sharded_index()
        result = index.range_query(Rect((0, 0), (15, 15)))
        assert sum(s.records for s in result.per_shard) == len(result.records)
        assert sum(s.over_read for s in result.per_shard) == result.over_read
        assert result.fan_out == len(result.per_shard) <= index.num_shards

    def test_inline_and_pooled_filtering_agree(self):
        serial = _sharded_index(max_workers=0)
        pooled = _sharded_index(max_workers=4)
        rect = Rect((1, 3), (12, 14))
        assert serial.range_query(rect).records == pooled.range_query(rect).records

    def test_measured_seeks_match_plan_prediction(self):
        index = _sharded_index()
        rect = Rect((3, 0), (12, 9))
        splan = index.plan(rect)
        result = index.range_query(rect)
        assert result.seeks == splan.estimated_seeks
        assert result.pages_read == splan.estimated_pages

    def test_batch_per_shard_shares_scans(self):
        index = _sharded_index()
        rect = Rect((4, 4), (11, 11))
        batch = index.range_query_batch([rect] * 5)
        # Five identical queries: each shard reads its pages once for the
        # whole batch, so per-shard pages are bounded by one query's worth.
        single = index.range_query(rect)
        for stats in batch.per_shard:
            one = next(s for s in single.per_shard if s.shard_id == stats.shard_id)
            assert stats.pages_read <= one.pages_read

    def test_batch_parallel_cost_decreases_with_workers(self):
        index = _sharded_index(num_shards=8)
        rng = np.random.default_rng(11)
        rects = []
        for _ in range(40):
            lo = rng.integers(0, 16, size=2)
            hi = np.minimum(lo + rng.integers(0, 9, size=2), 15)
            rects.append(Rect(tuple(lo), tuple(hi)))
        batch = index.range_query_batch(rects)
        costs = [batch.parallel_cost(workers=w) for w in (1, 2, 4, 8)]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_rejects_negative_workers(self):
        index = _sharded_index()
        with pytest.raises(InvalidQueryError):
            ScatterGatherExecutor(index.disk, index.page_layout, max_workers=-1)
