"""Planner: run construction paths, policies, layout handling."""

import pytest

from repro.analysis.exact import exact_average_clustering
from repro.core.runs import merge_runs_with_gaps, query_runs, query_runs_vectorized
from repro.curves import make_curve
from repro.curves.base import SpaceFillingCurve
from repro.engine import ExecutionPolicy, Planner
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex


class TestRunConstruction:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    def test_vectorized_runs_match_query_runs(self, name, rng):
        curve = make_curve(name, 16, 2)
        for _ in range(25):
            lo = rng.integers(0, 16, size=2)
            hi = [min(int(l) + int(e), 15) for l, e in zip(lo, rng.integers(0, 9, 2))]
            rect = Rect(tuple(int(l) for l in lo), tuple(hi))
            assert query_runs_vectorized(curve, rect) == query_runs(curve, rect)

    def test_planner_small_rects_use_vector_path(self, rng):
        curve = make_curve("hilbert", 32, 2)
        fast = Planner(curve, vectorize_volume_max=4096)
        slow = Planner(curve, vectorize_volume_max=0)
        for _ in range(20):
            lo = rng.integers(0, 24, size=2)
            rect = Rect.from_origin(tuple(int(l) for l in lo), (8, 8))
            assert fast.key_runs(rect) == slow.key_runs(rect)

    def test_vector_path_requires_true_kernel(self):
        class LoopCurve(SpaceFillingCurve):
            def _index_impl(self, cell):
                return cell[1] * self.side + cell[0]

            def _point_impl(self, key):
                return (key % self.side, key // self.side)

        planner = Planner(LoopCurve(8, 2))
        assert planner._has_vector_kernel is False
        # still correct through the generic path
        runs = planner.key_runs(Rect((1, 1), (3, 2)))
        assert runs == query_runs(LoopCurve(8, 2), Rect((1, 1), (3, 2)))

    def test_oversized_rect_rejected(self):
        planner = Planner(make_curve("onion", 8, 2))
        with pytest.raises(InvalidQueryError):
            planner.plan(Rect((0, 0), (8, 8)))

    def test_heuristic_vectorizes_small_not_large(self):
        """Default crossover is surface-aware: thin shells stay on the
        boundary path, chunky small rects take the bulk kernel."""
        planner = Planner(make_curve("hilbert", 64, 2))
        assert planner._use_vectorized(Rect.from_origin((0, 0), (4, 4)))
        assert not planner._use_vectorized(Rect.from_origin((0, 0), (60, 60)))

    def test_heuristic_matches_runs_regardless_of_path(self, rng):
        curve = make_curve("onion", 32, 2)
        planner = Planner(curve)
        for _ in range(15):
            lo = rng.integers(0, 16, size=2)
            lengths = tuple(int(v) for v in rng.integers(1, 17, size=2))
            rect = Rect.from_origin(tuple(int(l) for l in lo), lengths)
            assert planner.key_runs(rect) == query_runs(curve, rect)

    def test_explicit_volume_cap_still_honored(self):
        """Legacy fixed cap: an explicit int overrides the heuristic."""
        curve = make_curve("hilbert", 32, 2)
        capped = Planner(curve, vectorize_volume_max=0)
        big = Planner(curve, vectorize_volume_max=1 << 20)
        assert not capped._use_vectorized(Rect.from_origin((0, 0), (2, 2)))
        assert big._use_vectorized(Rect.from_origin((0, 0), (30, 30)))

    def test_exhaustive_only_curves_always_vectorize(self):
        """Curves with a kernel but no boundary/prefix capability would
        run the same exhaustive scan either way; take the direct call."""
        curve = make_curve("rowmajor", 16, 2)
        planner = Planner(curve)
        assert planner._has_vector_kernel
        assert planner._use_vectorized(Rect.from_origin((0, 0), (14, 14)))


class TestExpectedSeeks:
    def test_matches_lemma1_exact_average(self):
        curve = make_curve("hilbert", 16, 2)
        planner = Planner(curve)
        for lengths in [(3, 3), (5, 9), (16, 1)]:
            assert planner.expected_seeks(lengths) == pytest.approx(
                exact_average_clustering(curve, lengths)
            )

    def test_cached_per_window_size(self):
        planner = Planner(make_curve("onion", 16, 2))
        first = planner.expected_seeks((4, 4))
        assert planner._expected_seeks == {(4, 4): first}
        assert planner.expected_seeks([4, 4]) == first  # list form hits cache

    def test_table_and_cost(self):
        planner = Planner(make_curve("onion", 16, 2))
        table = planner.expected_seeks_table([(2, 2), (8, 8)])
        assert set(table) == {(2, 2), (8, 8)}
        model = planner.cost_model
        for window, seeks in table.items():
            assert planner.expected_cost(window) == pytest.approx(
                model.io_cost(seeks, 0)
            )

    def test_onion_beats_hilbert_on_near_full_windows(self):
        """Cost estimation without planning: the table ranks curves the
        way Theorem 1 / Lemma 5 say it must."""
        onion = Planner(make_curve("onion", 32, 2))
        hilbert = Planner(make_curve("hilbert", 32, 2))
        window = (30, 30)
        assert onion.expected_seeks(window) < hilbert.expected_seeks(window)


class TestPolicies:
    def test_gap_merging_matches_core_helper(self):
        curve = make_curve("hilbert", 16, 2)
        planner = Planner(curve)
        rect = Rect((1, 2), (13, 14))
        for tolerance in (0, 1, 8, 64):
            plan = planner.plan(rect, ExecutionPolicy(gap_tolerance=tolerance))
            expected = merge_runs_with_gaps(list(plan.runs), tolerance)
            assert list(plan.scan_runs) == expected

    def test_zero_tolerance_scan_runs_are_exact_runs(self):
        planner = Planner(make_curve("zorder", 8, 2))
        plan = planner.plan(Rect((1, 1), (6, 6)))
        assert plan.scan_runs == plan.runs

    def test_policy_recorded_on_plan(self):
        planner = Planner(make_curve("onion", 8, 2))
        policy = ExecutionPolicy(gap_tolerance=5)
        assert planner.plan(Rect((0, 0), (3, 3)), policy).policy == policy


class TestPlanMany:
    def test_plans_whole_workload(self, rng):
        curve = make_curve("onion", 16, 2)
        planner = Planner(curve)
        rects = [
            Rect.from_origin((int(x), int(y)), (4, 4))
            for x, y in rng.integers(0, 12, size=(10, 2))
        ]
        plans = planner.plan_many(rects)
        assert len(plans) == len(rects)
        for rect, plan in zip(rects, plans):
            assert plan.rect == rect

    def test_layout_attaches_page_spans(self):
        index = SFCIndex(make_curve("onion", 8, 2), page_capacity=2)
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        plans = index.planner.plan_many(
            [Rect((0, 0), (3, 3)), Rect((2, 2), (6, 6))], layout=index.page_layout
        )
        for plan in plans:
            assert plan.page_spans is not None
            assert len(plan.page_spans) == len(plan.scan_runs)
