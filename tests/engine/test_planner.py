"""Planner: run construction paths, policies, layout handling."""

import pytest

from repro.core.runs import merge_runs_with_gaps, query_runs, query_runs_vectorized
from repro.curves import make_curve
from repro.curves.base import SpaceFillingCurve
from repro.engine import ExecutionPolicy, Planner
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex


class TestRunConstruction:
    @pytest.mark.parametrize("name", ["onion", "hilbert", "zorder", "gray", "snake"])
    def test_vectorized_runs_match_query_runs(self, name, rng):
        curve = make_curve(name, 16, 2)
        for _ in range(25):
            lo = rng.integers(0, 16, size=2)
            hi = [min(int(l) + int(e), 15) for l, e in zip(lo, rng.integers(0, 9, 2))]
            rect = Rect(tuple(int(l) for l in lo), tuple(hi))
            assert query_runs_vectorized(curve, rect) == query_runs(curve, rect)

    def test_planner_small_rects_use_vector_path(self, rng):
        curve = make_curve("hilbert", 32, 2)
        fast = Planner(curve, vectorize_volume_max=4096)
        slow = Planner(curve, vectorize_volume_max=0)
        for _ in range(20):
            lo = rng.integers(0, 24, size=2)
            rect = Rect.from_origin(tuple(int(l) for l in lo), (8, 8))
            assert fast.key_runs(rect) == slow.key_runs(rect)

    def test_vector_path_requires_true_kernel(self):
        class LoopCurve(SpaceFillingCurve):
            def _index_impl(self, cell):
                return cell[1] * self.side + cell[0]

            def _point_impl(self, key):
                return (key % self.side, key // self.side)

        planner = Planner(LoopCurve(8, 2))
        assert planner._has_vector_kernel is False
        # still correct through the generic path
        runs = planner.key_runs(Rect((1, 1), (3, 2)))
        assert runs == query_runs(LoopCurve(8, 2), Rect((1, 1), (3, 2)))

    def test_oversized_rect_rejected(self):
        planner = Planner(make_curve("onion", 8, 2))
        with pytest.raises(InvalidQueryError):
            planner.plan(Rect((0, 0), (8, 8)))


class TestPolicies:
    def test_gap_merging_matches_core_helper(self):
        curve = make_curve("hilbert", 16, 2)
        planner = Planner(curve)
        rect = Rect((1, 2), (13, 14))
        for tolerance in (0, 1, 8, 64):
            plan = planner.plan(rect, ExecutionPolicy(gap_tolerance=tolerance))
            expected = merge_runs_with_gaps(list(plan.runs), tolerance)
            assert list(plan.scan_runs) == expected

    def test_zero_tolerance_scan_runs_are_exact_runs(self):
        planner = Planner(make_curve("zorder", 8, 2))
        plan = planner.plan(Rect((1, 1), (6, 6)))
        assert plan.scan_runs == plan.runs

    def test_policy_recorded_on_plan(self):
        planner = Planner(make_curve("onion", 8, 2))
        policy = ExecutionPolicy(gap_tolerance=5)
        assert planner.plan(Rect((0, 0), (3, 3)), policy).policy == policy


class TestPlanMany:
    def test_plans_whole_workload(self, rng):
        curve = make_curve("onion", 16, 2)
        planner = Planner(curve)
        rects = [
            Rect.from_origin((int(x), int(y)), (4, 4))
            for x, y in rng.integers(0, 12, size=(10, 2))
        ]
        plans = planner.plan_many(rects)
        assert len(plans) == len(rects)
        for rect, plan in zip(rects, plans):
            assert plan.rect == rect

    def test_layout_attaches_page_spans(self):
        index = SFCIndex(make_curve("onion", 8, 2), page_capacity=2)
        index.bulk_load([(x, y) for x in range(8) for y in range(8)])
        index.flush()
        plans = index.planner.plan_many(
            [Rect((0, 0), (3, 3)), Rect((2, 2), (6, 6))], layout=index.page_layout
        )
        for plan in plans:
            assert plan.page_spans is not None
            assert len(plan.page_spans) == len(plan.scan_runs)
