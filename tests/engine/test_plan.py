"""QueryPlan: immutability, estimates, the clustering link, explain()."""

import dataclasses

import pytest

from repro.core.clustering import clustering_number
from repro.curves import make_curve
from repro.engine import CostModel, ExecutionPolicy, Planner, QueryPlan
from repro.engine.plan import PageLayout
from repro.errors import InvalidQueryError
from repro.geometry import Rect
from repro.index import SFCIndex


def full_grid_index(name="onion", side=8, page_capacity=1, **kwargs):
    index = SFCIndex(make_curve(name, side, 2), page_capacity=page_capacity, **kwargs)
    index.bulk_load([(x, y) for x in range(side) for y in range(side)])
    index.flush()
    return index


class TestExecutionPolicy:
    def test_default_is_exact(self):
        assert ExecutionPolicy().gap_tolerance == 0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidQueryError):
            ExecutionPolicy(gap_tolerance=-1)

    def test_hashable_and_comparable(self):
        assert ExecutionPolicy(3) == ExecutionPolicy(3)
        assert hash(ExecutionPolicy(3)) == hash(ExecutionPolicy(3))
        assert ExecutionPolicy(3) != ExecutionPolicy(4)


class TestPageLayout:
    def test_span_covers_run_pages(self):
        layout = PageLayout(
            first_keys=[0, 10, 20, 30],
            page_ids=[0, 1, 2, 3],
            last_keys=[9, 19, 29, 39],
        )
        assert layout.span(0, 9) == (0, 0)
        assert layout.span(5, 25) == (0, 2)
        assert layout.span(10, 10) == (1, 1)  # page-aligned, no spill read
        assert layout.span(31, 40) == (3, 3)

    def test_span_finds_duplicate_spill(self):
        # page 0 ends with key 10, page 1 starts with more copies of 10
        layout = PageLayout(
            first_keys=[0, 10, 20], page_ids=[0, 1, 2], last_keys=[10, 19, 29]
        )
        assert layout.span(10, 10) == (0, 1)

    def test_empty_span_before_first_page(self):
        layout = PageLayout(first_keys=[10, 20], page_ids=[0, 1], last_keys=[19, 29])
        first, last = layout.span(0, 5)
        assert last < first

    def test_num_pages(self):
        layout = PageLayout(first_keys=[0], page_ids=[7], last_keys=[5])
        assert layout.num_pages == 1


class TestQueryPlanShape:
    def test_plan_is_immutable(self):
        index = full_grid_index()
        plan = index.plan(Rect((1, 1), (5, 5)))
        assert isinstance(plan, QueryPlan)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.rect = Rect((0, 0), (1, 1))
        assert isinstance(plan.runs, tuple)
        assert isinstance(plan.scan_runs, tuple)
        assert isinstance(plan.page_spans, tuple)

    def test_clustering_counts_exact_runs(self, rng):
        curve = make_curve("hilbert", 16, 2)
        planner = Planner(curve)
        for _ in range(20):
            lo = rng.integers(0, 16, size=2)
            hi = [min(int(l) + int(e), 15) for l, e in zip(lo, rng.integers(0, 8, 2))]
            rect = Rect(tuple(int(l) for l in lo), tuple(hi))
            plan = planner.plan(rect)
            assert plan.clustering == clustering_number(curve, rect)

    def test_first_key_is_lowest_scanned(self):
        index = full_grid_index()
        plan = index.plan(Rect((2, 2), (5, 5)))
        assert plan.first_key == plan.scan_runs[0][0]
        assert plan.first_key == min(start for start, _ in plan.scan_runs)

    def test_gap_cells_counts_merged_slack(self):
        curve = make_curve("hilbert", 8, 2)
        planner = Planner(curve)
        rect = Rect((0, 1), (6, 7))
        exact = planner.plan(rect)
        assert exact.gap_cells == 0
        merged = planner.plan(rect, ExecutionPolicy(gap_tolerance=64))
        covered = sum(e - s + 1 for s, e in merged.scan_runs)
        assert merged.gap_cells == covered - rect.volume
        assert merged.num_scan_runs < exact.num_scan_runs


class TestEstimates:
    def test_estimated_seeks_equals_clustering_when_page_aligned(self, rng):
        """The acceptance link: page-aligned runs make the plan's seek
        estimate exactly the paper's clustering number."""
        for name in ("onion", "hilbert", "zorder"):
            index = full_grid_index(name, side=8, page_capacity=1)
            for _ in range(15):
                lo = rng.integers(0, 8, size=2)
                hi = [min(int(l) + int(e), 7) for l, e in zip(lo, rng.integers(0, 6, 2))]
                rect = Rect(tuple(int(l) for l in lo), tuple(hi))
                plan = index.plan(rect)
                assert plan.estimated_seeks == clustering_number(index.curve, rect)

    def test_estimates_match_measurement_on_parked_head(self, rng):
        index = full_grid_index("hilbert", side=16, page_capacity=4)
        for _ in range(15):
            lo = rng.integers(0, 16, size=2)
            hi = [min(int(l) + int(e), 15) for l, e in zip(lo, rng.integers(0, 9, 2))]
            rect = Rect(tuple(int(l) for l in lo), tuple(hi))
            plan = index.plan(rect)
            index.disk.reset_stats()  # parks the head, like the estimate assumes
            result = index.range_query(rect)
            assert result.seeks == plan.estimated_seeks
            assert result.sequential_reads == plan.estimated_sequential_reads
            assert result.pages_read == plan.estimated_pages
            assert result.cost() == pytest.approx(plan.estimated_cost())

    def test_layout_free_plan_uses_pure_model(self):
        curve = make_curve("onion", 8, 2)
        rect = Rect((1, 1), (6, 6))
        plan = Planner(curve).plan(rect)
        assert plan.page_spans is None
        assert plan.estimated_seeks == clustering_number(curve, rect)
        assert plan.estimated_sequential_reads == 0

    def test_estimated_cost_uses_cost_model(self):
        curve = make_curve("onion", 8, 2)
        model = CostModel(seek_cost=100.0, read_cost=1.0)
        plan = Planner(curve, cost_model=model).plan(Rect((0, 0), (7, 7)))
        seeks = plan.estimated_seeks
        assert plan.estimated_cost() == pytest.approx(seeks * 101.0)
        cheap = CostModel(seek_cost=1.0, read_cost=1.0)
        assert plan.estimated_cost(cheap) == pytest.approx(seeks * 2.0)

    def test_cross_curve_cost_ranking_without_io(self):
        """The paper's pitch: rank curves by estimated cost, no data needed."""
        rect = Rect((1, 1), (28, 28))
        costs = {}
        for name in ("onion", "hilbert"):
            curve = make_curve(name, 32, 2)
            costs[name] = Planner(curve).plan(rect).estimated_cost()
        assert costs["onion"] < costs["hilbert"]


class TestExplain:
    def test_explain_mentions_runs_and_estimates(self):
        index = full_grid_index("hilbert", side=8, page_capacity=2)
        text = index.explain(Rect((0, 1), (6, 7)))
        assert "QueryPlan" in text
        assert "estimated seeks" in text
        assert "run 0: keys [" in text

    def test_explain_truncates_long_plans(self):
        index = full_grid_index("zorder", side=16, page_capacity=1)
        plan = index.plan(Rect((1, 0), (14, 15)))
        text = plan.explain(max_runs=3)
        assert "more run(s)" in text
        assert text.count("run ") <= 5  # 3 runs + "scan runs" header slack
