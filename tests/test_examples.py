"""Every shipped example runs end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "clusters" in proc.stdout
        assert "seeks" in proc.stdout

    def test_spatial_database(self):
        proc = run_example("spatial_database.py")
        assert proc.returncode == 0, proc.stderr
        assert "city-wide" in proc.stdout

    def test_distributed_partitioning(self):
        proc = run_example("distributed_partitioning.py")
        assert proc.returncode == 0, proc.stderr
        assert "shards" in proc.stdout
        assert "transparency check" in proc.stdout
        assert "ShardedPlan" in proc.stdout
        assert "rebalanced shard loads" in proc.stdout

    def test_curve_gallery(self):
        proc = run_example("curve_gallery.py")
        assert proc.returncode == 0, proc.stderr
        assert "onion" in proc.stdout and "hilbert" in proc.stdout
        assert "peano" in proc.stdout

    def test_plan_and_execute(self):
        proc = run_example("plan_and_execute.py")
        assert proc.returncode == 0, proc.stderr
        assert "estimated" in proc.stdout
        assert "hit rate" in proc.stdout
        assert "fewer seeks" in proc.stdout

    def test_approximate_scans(self):
        proc = run_example("approximate_scans.py")
        assert proc.returncode == 0, proc.stderr
        assert "over-read" in proc.stdout

    @pytest.mark.slow
    def test_reproduce_paper_ci_scale(self):
        proc = run_example("reproduce_paper.py", "ci", timeout=600)
        assert proc.returncode == 0, proc.stderr
        for marker in ("fig5a", "fig6b", "table1", "table2", "rows-columns"):
            assert marker in proc.stdout
